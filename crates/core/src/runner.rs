//! The OCA driver: repeated seeded ascents, dedup, halting, postprocessing.
//!
//! This is Section IV end-to-end, built around a **deterministic
//! ticket-ordered schedule**: ascent number `i` (its *ticket*) draws its
//! seed node and its initial set from an RNG stream derived only from
//! `(rng_seed, i)`, tickets are processed in rounds of [`OcaConfig::batch`]
//! whose seeds all see the same coverage snapshot, and an ordered reduction
//! applies dedup / min-size filtering / coverage / halting in ticket order.
//! Halting is therefore a monotone *cutoff ticket*: results past it are
//! discarded identically no matter how threads interleaved, so for a fixed
//! seed the cover is bit-identical across `threads ∈ {1, 2, …}`.
//!
//! The only cross-thread state during a round is read-only (the snapshot,
//! the [`CoverageBitmap`]) plus one atomic ticket cursor workers lease
//! small ticket batches from — no mutex anywhere on the hot path.

use crate::checkpoint::{
    config_checksum, graph_checksum, CheckpointConfig, CheckpointStats, DriverCheckpoint,
    ResumePolicy,
};
use crate::config::{CStrategy, OcaConfig};
use crate::halting::{AscentStopStats, HaltReason, HaltingState};
use crate::postprocess::{assign_orphans, merge_similar};
use crate::search::{ascend, AscentStop};
use crate::seed::{initial_set, ticket_seed};
use crate::state::CommunityState;
use oca_graph::ckpt::CkptError;
use oca_graph::{
    Community, Cover, CsrGraph, DetectContext, DetectError, Detection, NodeId, Relabeling,
};
use oca_spectral::interaction_strength;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Per-phase wall-clock breakdown of one run, in nanoseconds. The bench
/// and the detector telemetry expose these so an off-ascent regression
/// (dedup, merging, orphan assignment — the paper's Section IV
/// postprocessing) can never hide inside the end-to-end total.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseNanos {
    /// Greedy ascents: seed drawing plus local search. In parallel mode
    /// this is the wall time of the worker rounds, not summed CPU time.
    pub ascent_ns: u64,
    /// The ordered reduction: fingerprint dedup, coverage accounting and
    /// halting, per ticket.
    pub dedup_ns: u64,
    /// [`merge_similar`] over the accepted communities.
    pub merge_ns: u64,
    /// [`assign_orphans`], when enabled.
    pub orphan_ns: u64,
}

/// Result of an OCA run.
#[derive(Debug, Clone)]
pub struct OcaResult {
    /// The final (postprocessed) cover.
    pub cover: Cover,
    /// The interaction strength used.
    pub c: f64,
    /// The `λ_min` estimate behind it (0 when `c` was fixed).
    pub lambda_min: f64,
    /// Seeds processed before the halting cutoff (deterministic for a
    /// fixed seed, independent of the thread count).
    pub seeds_tried: usize,
    /// Communities accepted before merge postprocessing.
    pub raw_community_count: usize,
    /// Which halting criterion ended the run (`None` only for empty
    /// graphs, which never start).
    pub halt_reason: Option<HaltReason>,
    /// Why the recorded ascents stopped (converged vs. cap/budget/plateau),
    /// tallied in ticket order up to the halting cutoff — deterministic
    /// for a fixed seed like the cover itself.
    pub ascent_stops: AscentStopStats,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Where the wall-clock went, phase by phase.
    pub phases: PhaseNanos,
    /// Checkpoint telemetry (all-zero when checkpointing is off). On a
    /// resumed run, wall-clock and phase timers cover only the resumed
    /// process, while `seeds_tried` and the cover span the whole logical
    /// run.
    pub checkpoint: CheckpointStats,
}

/// The OCA algorithm, configured and ready to run.
#[derive(Debug, Clone, Default)]
pub struct Oca {
    config: OcaConfig,
}

/// Node-coverage bitmap over `AtomicU64` words.
///
/// Inside the driver the ordered reduction is the only writer (seed picks
/// deliberately use the round snapshot, not this bitmap — see
/// `Round::pick_seed`), but updates go through `&self` atomics so the
/// bitmap can be read lock-free from any thread at any time (progress
/// callbacks, external monitors) and shared across the worker scope
/// without borrow gymnastics. `Relaxed` suffices: bits only ever turn on,
/// and cross-round visibility is given by the scope join.
#[derive(Debug)]
pub struct CoverageBitmap {
    words: Vec<AtomicU64>,
}

impl CoverageBitmap {
    /// An all-uncovered bitmap for `n` nodes.
    pub fn new(n: usize) -> Self {
        CoverageBitmap {
            words: (0..n.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// True if node `i` is covered. Lock-free.
    pub fn get(&self, i: usize) -> bool {
        self.words[i / 64].load(Ordering::Relaxed) & (1 << (i % 64)) != 0
    }

    /// Marks node `i` covered; returns true if it was newly covered.
    /// A real atomic RMW, so even concurrent setters could not lose bits.
    fn set(&self, i: usize) -> bool {
        let mask = 1 << (i % 64);
        self.words[i / 64].fetch_or(mask, Ordering::Relaxed) & mask == 0
    }

    /// Copies the current words into `dst` (lock-free snapshot). The
    /// driver takes one per round — at the round boundary, where the
    /// bitmap is identical on the sequential and parallel paths — to
    /// build the covered-hub prune mask every ticket of the round shares.
    pub fn copy_words_into(&self, dst: &mut [u64]) {
        debug_assert_eq!(dst.len(), self.words.len());
        for (d, w) in dst.iter_mut().zip(&self.words) {
            *d = w.load(Ordering::Relaxed);
        }
    }

    /// Number of 64-bit words backing the bitmap.
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// Rebuilds a bitmap from checkpointed words (validated upstream by
    /// [`DriverCheckpoint::decode`]).
    fn from_words(words: &[u64]) -> Self {
        CoverageBitmap {
            words: words.iter().map(|&w| AtomicU64::new(w)).collect(),
        }
    }
}

/// The uncovered-node list: O(1) unbiased seed picks (no rejection
/// sampling), updated by swap-removal on cover. Removals are buffered
/// during a round and applied at its end — the driver lends `nodes` out
/// as the round's pick snapshot without copying — and their order is the
/// deterministic reduction order, so the list content *and order* are
/// identical across thread counts.
#[derive(Debug)]
struct UncoveredList {
    nodes: Vec<NodeId>,
    /// Position of each node in `nodes`; `u32::MAX` once covered.
    pos: Vec<u32>,
}

impl UncoveredList {
    fn new(n: usize) -> Self {
        UncoveredList {
            nodes: (0..n as u32).map(NodeId).collect(),
            pos: (0..n as u32).collect(),
        }
    }

    fn remove(&mut self, v: NodeId) {
        let p = self.pos[v.index()];
        debug_assert_ne!(p, u32::MAX, "node removed twice");
        let last = *self.nodes.last().expect("non-empty when removing");
        self.nodes.swap_remove(p as usize);
        self.pos[last.index()] = p;
        self.pos[v.index()] = u32::MAX;
    }
}

/// What one ticket's ascent produced, in the cheapest form the ordered
/// reduction can decide on: the O(1) set fingerprint and size always, the
/// materialized member vector only when the ticket can still be accepted
/// (too-small sets and already-seen fingerprints skip the clone+sort of
/// [`CommunityState::to_community`] entirely — on hub graphs, where the
/// overwhelming majority of ascents re-converge to known communities,
/// this is most of the off-ascent wall-clock).
struct TicketOutcome {
    /// Order-independent 128-bit fingerprint of the final set.
    fp: u128,
    /// Member count of the final set.
    size: usize,
    /// The members, or `None` when the ticket was pre-filtered.
    community: Option<Community>,
    /// Why the ascent stopped, for the reduction's ordered stop tally.
    stop: AscentStop,
}

/// The ordered deterministic reduction: every accepted ascent flows
/// through [`Reduction::record`] in ascending ticket order, which is what
/// makes dedup, coverage accounting and the halting cutoff independent of
/// thread scheduling. The coverage bitmap lives *outside* (it is updated
/// through `&self` atomics), so workers can hold a shared reference to it
/// across rounds while the reduction advances between them.
struct Reduction {
    halting: HaltingState,
    uncovered: UncoveredList,
    /// Nodes newly covered this round; applied to `uncovered` at round
    /// end (in this deterministic order) while its `nodes` vec is lent
    /// out as the round's snapshot.
    newly_covered: Vec<NodeId>,
    /// Fingerprints of every accepted community: dedup is an O(1) probe
    /// with no member-vector clone (was `HashSet<Vec<NodeId>>`, which
    /// cloned and content-hashed the full vector once per ticket).
    seen: HashSet<u128>,
    accepted: Vec<Community>,
    /// The accepted communities' fingerprints in acceptance order,
    /// parallel to `accepted`. `seen` holds exactly this set (rejects
    /// never enter it), so this vector is both the checkpoint's canonical
    /// fingerprint serialization and the rewind path's O(round) undo log
    /// for `seen`.
    accepted_fps: Vec<u128>,
    min_size: usize,
    halted: bool,
    /// Stop-reason tally of every recorded ticket (budget telemetry).
    stops: AscentStopStats,
}

impl Reduction {
    fn new(config: &OcaConfig, n: usize) -> Self {
        let halting = HaltingState::new(config.halting, n);
        let halted = halting.should_halt();
        Reduction {
            halting,
            uncovered: UncoveredList::new(n),
            newly_covered: Vec::new(),
            seen: HashSet::new(),
            accepted: Vec::new(),
            accepted_fps: Vec::new(),
            min_size: config.min_community_size,
            halted,
            stops: AscentStopStats::default(),
        }
    }

    /// Reconstructs the round-start state a checkpoint recorded: the
    /// exact uncovered list (content *and* order — seed picks index it),
    /// the dedup set, the accepted communities and the halting counters.
    fn restore(config: &OcaConfig, n: usize, ckpt: &DriverCheckpoint) -> Self {
        let halting = HaltingState::restore(
            config.halting,
            n,
            ckpt.seeds_tried as usize,
            ckpt.covered as usize,
            ckpt.stagnant as usize,
            ckpt.rejected_streak as usize,
        );
        let halted = halting.should_halt();
        let nodes: Vec<NodeId> = ckpt.uncovered.iter().map(|&v| NodeId(v)).collect();
        let mut pos = vec![u32::MAX; n];
        for (i, v) in nodes.iter().enumerate() {
            pos[v.index()] = i as u32;
        }
        Reduction {
            halting,
            uncovered: UncoveredList { nodes, pos },
            newly_covered: Vec::new(),
            seen: ckpt.fingerprints.iter().copied().collect(),
            accepted: ckpt.accepted.clone(),
            accepted_fps: ckpt.fingerprints.clone(),
            min_size: config.min_community_size,
            halted,
            stops: ckpt.stops,
        }
    }

    /// Snapshots the current (round-boundary) state for checkpointing.
    /// The bitmap words are derived from the uncovered list rather than
    /// copied from the live bitmap: at a boundary the two agree, and on
    /// the cancellation flush path — where the live bitmap may have run
    /// ahead inside the abandoned round — the rewound uncovered list is
    /// the authoritative one.
    fn to_checkpoint(&self, rng_seed: u64, c: f64, lambda_min: f64, n: usize) -> DriverCheckpoint {
        let mut words = vec![u64::MAX; n.div_ceil(64)];
        if n % 64 != 0 {
            words[n / 64] = (1u64 << (n % 64)) - 1;
        }
        for v in &self.uncovered.nodes {
            words[v.index() / 64] &= !(1u64 << (v.index() % 64));
        }
        DriverCheckpoint {
            rng_seed,
            c,
            lambda_min,
            seeds_tried: self.halting.seeds_tried() as u64,
            covered: self.halting.covered() as u64,
            stagnant: self.halting.stagnant() as u64,
            rejected_streak: self.halting.rejected_streak() as u64,
            stops: self.stops,
            node_count: n as u64,
            accepted: self.accepted.clone(),
            fingerprints: self.accepted_fps.clone(),
            uncovered: self.uncovered.nodes.iter().map(|v| v.0).collect(),
            bitmap_words: words,
        }
    }

    /// Records the next ticket's outcome (in ticket order) and emits the
    /// post-record progress tick. Returns true while the run should go on.
    fn record(
        &mut self,
        outcome: TicketOutcome,
        covered: &CoverageBitmap,
        ctx: &DetectContext,
        max_seeds: usize,
    ) -> bool {
        debug_assert!(!self.halted, "ticket recorded past the cutoff");
        self.stops.record(outcome.stop);
        // Too-small communities are dropped without entering the dedup
        // set; duplicates are rejected by the O(1) fingerprint probe.
        if outcome.size < self.min_size || !self.seen.insert(outcome.fp) {
            self.halting.record(0, false);
        } else {
            // The fingerprint was novel, so the worker cannot have
            // pre-filtered this ticket (`seen` only grows): the members
            // were materialized.
            let community = outcome
                .community
                .expect("novel fingerprint implies materialized members");
            let mut newly = 0usize;
            for &v in community.members() {
                if covered.set(v.index()) {
                    self.newly_covered.push(v);
                    newly += 1;
                }
            }
            self.accepted.push(community);
            self.accepted_fps.push(outcome.fp);
            self.halting.record(newly, true);
        }
        ctx.tick("ascent", self.halting.seeds_tried(), Some(max_seeds));
        self.halted = self.halting.should_halt();
        !self.halted
    }
}

/// Read-only per-round context shared with every worker.
struct Round<'a> {
    graph: &'a CsrGraph,
    config: &'a OcaConfig,
    /// The uncovered nodes as of the round start — the coverage snapshot
    /// every seed pick of the round is drawn against.
    snapshot: &'a [NodeId],
    /// The master RNG seed tickets derive from. Usually
    /// [`OcaConfig::rng_seed`], but a resumed run adopts the *original*
    /// run's seed from the checkpoint, so the remaining tickets continue
    /// the original schedule even under a different nominal seed.
    rng_seed: u64,
    /// Global ticket number of the round's first ticket.
    start: u64,
    /// Tickets in this round.
    len: usize,
}

impl Round<'_> {
    /// Runs the ascent for round-local ticket `t`: a pure function of
    /// `(rng_seed, start + t)` and the round snapshot.
    ///
    /// `seen` is a dedup-set snapshot no newer than the reduction's view
    /// of this ticket (the live set on the sequential path, the
    /// round-start set in parallel). Probing it never changes the
    /// *decision* — the reduction re-checks in ticket order — it only
    /// skips materializing member vectors for ascents that are already
    /// guaranteed to be rejected, so the output stays bit-identical at
    /// any thread count.
    fn run_ticket(
        &self,
        state: &mut CommunityState<'_>,
        t: usize,
        seen: &HashSet<u128>,
    ) -> TicketOutcome {
        let mut rng = StdRng::seed_from_u64(ticket_seed(self.rng_seed, self.start + t as u64));
        let seed = self.pick_seed(&mut rng);
        let initial = initial_set(self.config.seed_strategy, self.graph, seed, &mut rng);
        let outcome = ascend(state, &initial, &self.config.search);
        let fp = state.fingerprint();
        let size = state.len();
        let community = (size >= self.config.min_community_size && !seen.contains(&fp))
            .then(|| state.to_community());
        TicketOutcome {
            fp,
            size,
            community,
            stop: outcome.stop,
        }
    }

    /// O(1) unbiased pick from the uncovered snapshot; when everything is
    /// covered (possible while the coverage criterion is disabled) any
    /// node will do. Note the pick is against the *snapshot*, not the live
    /// bitmap: the sequential path reduces incrementally, so the bitmap
    /// may run ahead mid-round, and consulting it would reintroduce
    /// schedule-dependent output.
    fn pick_seed<R: Rng + ?Sized>(&self, rng: &mut R) -> NodeId {
        if self.snapshot.is_empty() {
            return NodeId(rng.random_range(0..self.graph.node_count() as u32));
        }
        self.snapshot[rng.random_range(0..self.snapshot.len())]
    }
}

impl Oca {
    /// Creates a runner with the given configuration.
    ///
    /// # Panics
    /// Panics on an invalid configuration; use [`Oca::try_new`] for a
    /// typed error instead.
    pub fn new(config: OcaConfig) -> Self {
        match Oca::try_new(config) {
            Ok(oca) => oca,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible counterpart of [`Oca::new`]: configuration problems are
    /// reported as [`DetectError::InvalidConfig`].
    pub fn try_new(config: OcaConfig) -> Result<Self, DetectError> {
        config.validate()?;
        Ok(Oca { config })
    }

    /// The active configuration.
    pub fn config(&self) -> &OcaConfig {
        &self.config
    }

    /// Resolves the interaction strength for `graph`.
    fn resolve_c(&self, graph: &CsrGraph) -> (f64, f64) {
        match self.config.c {
            CStrategy::Fixed(c) => (c, 0.0),
            CStrategy::Spectral(ref pc) => {
                let s = interaction_strength(graph, pc);
                (s.c, s.lambda_min)
            }
        }
    }

    /// Runs OCA on `graph` and returns the overlapping cover.
    pub fn run(&self, graph: &CsrGraph) -> OcaResult {
        match self.run_ctx(graph, &DetectContext::new(self.config.rng_seed)) {
            Ok(result) => result,
            // The default context can never be cancelled, and the config
            // was validated at construction.
            Err(e) => unreachable!("uncancellable run failed: {e}"),
        }
    }

    /// Runs OCA under a [`DetectContext`]: the context's cancellation
    /// token is polled once per ascent and a progress tick (`"ascent"`) is
    /// emitted per ticket as the ordered reduction records it — ticks are
    /// monotone and the final tick reports the run's last ascent. On
    /// cancellation the accepted (raw, un-postprocessed) communities are
    /// returned inside [`DetectError::Cancelled`].
    ///
    /// Randomness still derives from [`OcaConfig::rng_seed`]; detector
    /// wrappers copy the context seed into the config first. For a fixed
    /// seed the result is identical at any [`OcaConfig::threads`] count.
    ///
    /// With [`OcaConfig::relabel`] set, the run happens on a
    /// degree-ordered copy of the graph and every cover leaving this
    /// function — the result's and a cancellation's partial — is mapped
    /// back to original ids.
    pub fn run_ctx(&self, graph: &CsrGraph, ctx: &DetectContext) -> Result<OcaResult, DetectError> {
        if !self.config.relabel {
            return self.run_ctx_inner(graph, ctx);
        }
        let relabeling = Relabeling::degree_descending(graph);
        let compact = graph.relabeled(&relabeling);
        match self.run_ctx_inner(&compact, ctx) {
            Ok(mut result) => {
                result.cover = relabeling.cover_to_original(&result.cover);
                Ok(result)
            }
            Err(DetectError::Cancelled { partial }) => Err(DetectError::cancelled(Detection {
                cover: relabeling.cover_to_original(&partial.cover),
                ..*partial
            })),
            Err(other) => Err(other),
        }
    }

    /// [`Oca::run_ctx`] on the graph as given (no relabeling pass).
    fn run_ctx_inner(
        &self,
        graph: &CsrGraph,
        ctx: &DetectContext,
    ) -> Result<OcaResult, DetectError> {
        let start = Instant::now();
        let n = graph.node_count();
        let cancelled =
            |cover: Cover, seeds: usize, c: f64, lambda_min: f64, ckpt: &CheckpointStats| {
                let mut stats = vec![
                    ("c", format!("{c:.6}")),
                    ("lambda_min", format!("{lambda_min:.6}")),
                ];
                stats.extend(ckpt.stat_entries());
                DetectError::cancelled(Detection {
                    cover,
                    elapsed: start.elapsed(),
                    complete: false,
                    iterations: seeds,
                    stats,
                })
            };
        let mut ckpt_stats = CheckpointStats::default();
        if ctx.is_cancelled() {
            return Err(cancelled(Cover::empty(n), 0, 0.0, 0.0, &ckpt_stats));
        }
        if n == 0 {
            let (c, lambda_min) = self.resolve_c(graph);
            return Ok(OcaResult {
                cover: Cover::empty(0),
                c,
                lambda_min,
                seeds_tried: 0,
                raw_community_count: 0,
                halt_reason: None,
                ascent_stops: AscentStopStats::default(),
                elapsed: start.elapsed(),
                phases: PhaseNanos::default(),
                checkpoint: ckpt_stats,
            });
        }

        let config = &self.config;
        // --- checkpoint arming and resume ------------------------------
        // The binding checksums are computed once per run: the config
        // hash is O(1), the graph hash O(n) over the degree sequence.
        let ckpt_cfg: Option<&CheckpointConfig> = config.checkpoint.as_ref();
        let bindings = ckpt_cfg.map(|_| (config_checksum(config), graph_checksum(graph)));
        let mut resumed: Option<DriverCheckpoint> = None;
        if let Some(ck) = ckpt_cfg {
            if ck.resume != ResumePolicy::Fresh {
                let (cfg_ck, g_ck) = bindings.expect("bindings computed when armed");
                match DriverCheckpoint::load(&ck.path, cfg_ck, g_ck) {
                    Ok(d) if d.node_count == n as u64 => resumed = Some(d),
                    Ok(d) => {
                        // The graph binding should have refused this
                        // already; belt and braces against checksum
                        // collisions on the degree sequence.
                        let source = CkptError::Malformed(format!(
                            "checkpoint is for a {}-node graph, this one has {n} nodes",
                            d.node_count
                        ));
                        if ck.resume == ResumePolicy::Strict {
                            return Err(DetectError::Checkpoint {
                                path: ck.path.clone(),
                                source,
                            });
                        }
                        let _ = std::fs::remove_file(&ck.path);
                    }
                    // No file yet: the first run of a chain starts fresh.
                    Err(CkptError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {}
                    Err(source) => {
                        if ck.resume == ResumePolicy::Strict {
                            return Err(DetectError::Checkpoint {
                                path: ck.path.clone(),
                                source,
                            });
                        }
                        // Salvage: a damaged or foreign file must never
                        // wedge an unattended restart loop — discard it
                        // and start fresh.
                        let _ = std::fs::remove_file(&ck.path);
                    }
                }
            }
        }
        let (c, lambda_min) = match &resumed {
            // Re-resolving would give the same values (spectral
            // resolution is deterministic) at the cost of a power-method
            // run; the checkpoint carries them instead.
            Some(d) => (d.c, d.lambda_min),
            None => self.resolve_c(graph),
        };
        let rng_seed = resumed.as_ref().map_or(config.rng_seed, |d| d.rng_seed);

        let threads = config.threads;
        let covered = match &resumed {
            Some(d) => CoverageBitmap::from_words(&d.bitmap_words),
            None => CoverageBitmap::new(n),
        };
        let mut reduction = match &resumed {
            Some(d) => {
                ckpt_stats.resumed_from_ticket = Some(d.seeds_tried);
                Reduction::restore(config, n, d)
            }
            None => Reduction::new(config, n),
        };
        drop(resumed);
        let mut phases = PhaseNanos::default();
        // One reusable search state per worker; buffers persist across
        // rounds so reset cost stays proportional to work done.
        let mut states: Vec<CommunityState<'_>> = (0..threads.max(1))
            .map(|_| CommunityState::new(graph, c))
            .collect();
        // Covered-hub pruning: nodes of degree ≥ the threshold get a bit
        // in this fixed mask; each round intersects it with the round-start
        // coverage and hands the result to every worker state. Because the
        // bitmap only advances at round boundaries on the parallel path —
        // and the sequential path uses the same round-start snapshot — the
        // prune mask a ticket sees is a pure function of the schedule, so
        // covers stay bit-identical across thread counts.
        let hub_mask: Vec<u64> = if config.search.prune_hub_degree > 0 {
            let mut mask = vec![0u64; covered.word_count()];
            for v in 0..n {
                if graph.neighbors(NodeId(v as u32)).len() >= config.search.prune_hub_degree {
                    mask[v / 64] |= 1 << (v % 64);
                }
            }
            mask
        } else {
            Vec::new()
        };
        let mut prune_words = vec![0u64; hub_mask.len()];
        let mut rounds_since_start = 0u64;

        while !reduction.halted {
            if !hub_mask.is_empty() {
                covered.copy_words_into(&mut prune_words);
                for (w, m) in prune_words.iter_mut().zip(&hub_mask) {
                    *w &= m;
                }
                for state in &mut states {
                    state.set_prune_snapshot(&prune_words);
                }
            }
            let done = reduction.halting.seeds_tried();
            let len = config.batch.min(config.halting.max_seeds - done);
            debug_assert!(len > 0, "max_seeds exhausted without halting");
            // The uncovered list is *lent out* (no copy) as the round's
            // pick snapshot; the reduction buffers this round's removals
            // in `newly_covered` and applies them once the round is over,
            // so the sequential path can reduce incrementally (stopping
            // at the cutoff without wasted ascents) while every pick of
            // the round still sees the round-start coverage, exactly
            // like the parallel path.
            // Round-start guard for the cancellation rewind: counter
            // clones only, taken only while checkpointing is armed.
            let guard = ckpt_cfg.is_some().then(|| {
                (
                    reduction.halting.clone(),
                    reduction.stops,
                    reduction.accepted.len(),
                )
            });
            let snapshot = std::mem::take(&mut reduction.uncovered.nodes);
            let round = Round {
                graph,
                config,
                snapshot: &snapshot,
                rng_seed,
                start: done as u64,
                len,
            };

            if threads <= 1 || len == 1 {
                for t in 0..len {
                    if ctx.is_cancelled() {
                        break;
                    }
                    // Sequentially the reduction's live dedup set is
                    // current for this ticket, so it doubles as the
                    // pre-filter snapshot.
                    let t0 = Instant::now();
                    let outcome = round.run_ticket(&mut states[0], t, &reduction.seen);
                    let t1 = Instant::now();
                    let go_on = reduction.record(outcome, &covered, ctx, config.halting.max_seeds);
                    phases.ascent_ns += t1.duration_since(t0).as_nanos() as u64;
                    phases.dedup_ns += t1.elapsed().as_nanos() as u64;
                    if !go_on {
                        break;
                    }
                }
            } else {
                let t0 = Instant::now();
                let results = run_round_parallel(&round, &mut states, &reduction.seen, ctx);
                let t1 = Instant::now();
                phases.ascent_ns += t1.duration_since(t0).as_nanos() as u64;
                for slot in results {
                    // A hole means a worker bailed on cancellation; the
                    // contiguous prefix before it is still reduced so the
                    // partial result is well-formed.
                    let Some(outcome) = slot else { break };
                    if !reduction.record(outcome, &covered, ctx, config.halting.max_seeds)
                        || ctx.is_cancelled()
                    {
                        break;
                    }
                }
                phases.dedup_ns += t1.elapsed().as_nanos() as u64;
            }
            reduction.uncovered.nodes = snapshot;
            if ctx.is_cancelled() {
                if let (Some(ck), Some((halting, stops, accepted_len))) = (ckpt_cfg, guard) {
                    // Rewind to the round start — the only cut the
                    // schedule can resume from bit-identically — then
                    // flush a final checkpoint and return the rewound
                    // state as the partial. The abandoned round's accepts
                    // are undone (fingerprints out of `seen`, communities
                    // truncated, counters restored, buffered removals
                    // dropped); the live bitmap may keep stray mid-round
                    // bits, but the checkpoint derives coverage from the
                    // rewound uncovered list and this process does no
                    // further work with the bitmap.
                    for fp in reduction.accepted_fps.drain(accepted_len..) {
                        reduction.seen.remove(&fp);
                    }
                    reduction.accepted.truncate(accepted_len);
                    reduction.halting = halting;
                    reduction.stops = stops;
                    reduction.newly_covered.clear();
                    write_checkpoint(
                        ck,
                        bindings.expect("bindings computed when armed"),
                        &reduction,
                        &mut ckpt_stats,
                        rng_seed,
                        c,
                        lambda_min,
                        n,
                    );
                    let seeds = reduction.halting.seeds_tried();
                    let cover = Cover::new(n, std::mem::take(&mut reduction.accepted));
                    return Err(cancelled(cover, seeds, c, lambda_min, &ckpt_stats));
                }
                for v in std::mem::take(&mut reduction.newly_covered) {
                    reduction.uncovered.remove(v);
                }
                let seeds = reduction.halting.seeds_tried();
                let cover = Cover::new(n, reduction.accepted);
                return Err(cancelled(cover, seeds, c, lambda_min, &ckpt_stats));
            }
            for v in std::mem::take(&mut reduction.newly_covered) {
                reduction.uncovered.remove(v);
            }
            rounds_since_start += 1;
            if let Some(ck) = ckpt_cfg {
                if !reduction.halted && rounds_since_start % ck.every_rounds == 0 {
                    let wrote = write_checkpoint(
                        ck,
                        bindings.expect("bindings computed when armed"),
                        &reduction,
                        &mut ckpt_stats,
                        rng_seed,
                        c,
                        lambda_min,
                        n,
                    );
                    if wrote && ck.faults.check_kill(ckpt_stats.rounds_checkpointed) {
                        // Simulated kill-between-rounds: abandon the run
                        // at exactly the boundary the checkpoint just
                        // captured — the crash window resume must cover.
                        let seeds = reduction.halting.seeds_tried();
                        let cover = Cover::new(n, std::mem::take(&mut reduction.accepted));
                        return Err(cancelled(cover, seeds, c, lambda_min, &ckpt_stats));
                    }
                }
            }
        }

        let raw_count = reduction.accepted.len();
        let mut cover = Cover::new(n, reduction.accepted);
        if let Some(threshold) = config.merge_threshold {
            let t0 = Instant::now();
            cover = merge_similar(&cover, threshold);
            phases.merge_ns += t0.elapsed().as_nanos() as u64;
        }
        if config.assign_orphans {
            let t0 = Instant::now();
            cover = assign_orphans(graph, &cover, 16);
            phases.orphan_ns += t0.elapsed().as_nanos() as u64;
        }
        if let Some(ck) = ckpt_cfg {
            // The run completed: the checkpoint is spent. Removing it
            // keeps a later run over the same path (serve's next
            // recompute round, a re-invocation of the CLI) from resuming
            // into an already-finished state.
            let _ = std::fs::remove_file(&ck.path);
        }
        Ok(OcaResult {
            cover,
            c,
            lambda_min,
            seeds_tried: reduction.halting.seeds_tried(),
            raw_community_count: raw_count,
            halt_reason: reduction.halting.reason(),
            ascent_stops: reduction.stops,
            elapsed: start.elapsed(),
            phases,
            checkpoint: ckpt_stats,
        })
    }
}

/// Writes the reduction's current boundary state to the configured
/// checkpoint path, updating the telemetry. Failures (I/O errors,
/// injected torn writes) are counted, not fatal: the run continues, and
/// the previous complete checkpoint — the atomic writer never replaces a
/// file with a partial one — keeps covering it.
#[allow(clippy::too_many_arguments)]
fn write_checkpoint(
    ck: &CheckpointConfig,
    bindings: (u64, u64),
    reduction: &Reduction,
    stats: &mut CheckpointStats,
    rng_seed: u64,
    c: f64,
    lambda_min: f64,
    n: usize,
) -> bool {
    let snapshot = reduction.to_checkpoint(rng_seed, c, lambda_min, n);
    let t0 = Instant::now();
    match snapshot.save(&ck.path, bindings.0, bindings.1, &ck.faults) {
        Ok(bytes) => {
            let ns = t0.elapsed().as_nanos() as u64;
            stats.rounds_checkpointed += 1;
            stats.last_bytes = bytes;
            stats.last_write_ns = ns;
            stats.total_write_ns += ns;
            true
        }
        Err(_) => {
            stats.write_failures += 1;
            false
        }
    }
}

/// Executes one round's tickets across scoped worker threads. Workers
/// lease ticket chunks from an atomic cursor (one `fetch_add` per chunk —
/// the entire cross-thread synchronization of the round) and return their
/// results, which are assembled into ticket-indexed slots for the ordered
/// reduction. `None` slots only occur after cancellation.
fn run_round_parallel(
    round: &Round<'_>,
    states: &mut [CommunityState<'_>],
    seen: &HashSet<u128>,
    ctx: &DetectContext,
) -> Vec<Option<TicketOutcome>> {
    let cursor = AtomicUsize::new(0);
    // Small leases keep workers balanced near the end of a round while
    // amortizing the cursor traffic.
    let lease = (round.len / (states.len() * 4)).clamp(1, 32);
    let buffers: Vec<Vec<(usize, TicketOutcome)>> = crossbeam::scope(|scope| {
        let handles: Vec<_> = states
            .iter_mut()
            .map(|state| {
                let cursor = &cursor;
                scope.spawn(move |_| {
                    let mut out: Vec<(usize, TicketOutcome)> = Vec::new();
                    'lease: loop {
                        let lo = cursor.fetch_add(lease, Ordering::Relaxed);
                        if lo >= round.len {
                            break;
                        }
                        for t in lo..(lo + lease).min(round.len) {
                            if ctx.is_cancelled() {
                                break 'lease;
                            }
                            out.push((t, round.run_ticket(state, t, seen)));
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
    .expect("worker thread panicked");

    let mut slots: Vec<Option<TicketOutcome>> = Vec::new();
    slots.resize_with(round.len, || None);
    for (t, outcome) in buffers.into_iter().flatten() {
        debug_assert!(slots[t].is_none(), "ticket executed twice");
        slots[t] = Some(outcome);
    }
    slots
}

/// Convenience: run OCA with default configuration.
pub fn run_default(graph: &CsrGraph) -> OcaResult {
    Oca::default().run(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OcaConfig;
    use oca_graph::from_edges;
    use std::sync::Mutex;

    /// Three 5-cliques connected in a ring by single bridges.
    fn three_cliques() -> CsrGraph {
        let mut edges = Vec::new();
        for b in [0u32, 5, 10] {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    edges.push((b + i, b + j));
                }
            }
        }
        edges.extend([(4, 5), (9, 10), (14, 0)]);
        from_edges(15, edges)
    }

    fn quick_config() -> OcaConfig {
        OcaConfig {
            halting: crate::halting::HaltingConfig {
                max_seeds: 200,
                target_coverage: 1.0,
                stagnation_limit: 30,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn finds_the_three_cliques() {
        let g = three_cliques();
        let result = Oca::new(quick_config()).run(&g);
        assert_eq!(result.cover.len(), 3, "expected 3 communities");
        let mut sizes: Vec<usize> = result.cover.communities().iter().map(|c| c.len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![5, 5, 5]);
        assert!((result.cover.coverage() - 1.0).abs() < 1e-12);
        assert_eq!(result.halt_reason, Some(HaltReason::Coverage));
    }

    #[test]
    fn sequential_runs_are_deterministic() {
        let g = three_cliques();
        let a = Oca::new(quick_config()).run(&g);
        let b = Oca::new(quick_config()).run(&g);
        assert_eq!(a.cover, b.cover);
        assert_eq!(a.seeds_tried, b.seeds_tried);
    }

    /// The determinism contract of this module: for a fixed seed the
    /// cover, the seeds-tried cutoff and the halt reason are bit-identical
    /// at any thread count — including cutoffs that land mid-round.
    #[test]
    fn parallel_equals_sequential_at_any_thread_count() {
        let g = three_cliques();
        let reference = Oca::new(quick_config()).run(&g);
        assert_eq!(reference.cover.len(), 3);
        for threads in [2, 3, 4, 8] {
            let r = Oca::new(OcaConfig {
                threads,
                ..quick_config()
            })
            .run(&g);
            assert_eq!(r.cover, reference.cover, "threads = {threads}");
            assert_eq!(r.seeds_tried, reference.seeds_tried, "threads = {threads}");
            assert_eq!(r.halt_reason, reference.halt_reason, "threads = {threads}");
        }
    }

    #[test]
    fn round_size_is_part_of_the_schedule_but_threads_are_not() {
        let g = three_cliques();
        for batch in [1, 7, 64] {
            let reference = Oca::new(OcaConfig {
                batch,
                ..quick_config()
            })
            .run(&g);
            for threads in [2, 4] {
                let r = Oca::new(OcaConfig {
                    batch,
                    threads,
                    ..quick_config()
                })
                .run(&g);
                assert_eq!(r.cover, reference.cover, "batch = {batch}");
                assert_eq!(r.seeds_tried, reference.seeds_tried, "batch = {batch}");
            }
        }
    }

    /// Ticks fire after each recorded ascent with the post-record count:
    /// strictly increasing by one, ending exactly at `seeds_tried`.
    #[test]
    fn progress_ticks_are_monotone_and_report_the_last_ascent() {
        let g = three_cliques();
        for threads in [1, 4] {
            let ticks = std::sync::Arc::new(Mutex::new(Vec::new()));
            let sink = std::sync::Arc::clone(&ticks);
            let ctx =
                DetectContext::new(0x0CA).with_progress(move |p| sink.lock().unwrap().push(p.done));
            let result = Oca::new(OcaConfig {
                threads,
                ..quick_config()
            })
            .run_ctx(&g, &ctx)
            .unwrap();
            let ticks = ticks.lock().unwrap();
            let expected: Vec<usize> = (1..=result.seeds_tried).collect();
            assert_eq!(*ticks, expected, "threads = {threads}");
        }
    }

    /// Once the three cliques are found every further ascent re-converges
    /// to one of them; with coverage unreachable the duplicate streak is
    /// what stops the run (long before the stagnation window, which the
    /// config leaves effectively open).
    #[test]
    fn duplicate_streak_halts_hub_style_repetition() {
        let g = three_cliques();
        let r = Oca::new(OcaConfig {
            halting: crate::halting::HaltingConfig {
                max_seeds: 10_000,
                target_coverage: 2.0,
                stagnation_limit: usize::MAX - 1,
                stagnation_streak: 25,
                ..Default::default()
            },
            ..Default::default()
        })
        .run(&g);
        assert_eq!(r.halt_reason, Some(HaltReason::DuplicateStreak));
        assert_eq!(r.cover.len(), 3, "the streak fires only after the finds");
        assert!(r.seeds_tried < 10_000, "the budget must not be exhausted");
    }

    /// The determinism contract extends to every hub-search feature: with
    /// scaled budgets, covered-hub pruning and the penalized move rule all
    /// enabled, the cover, cutoff, halt reason *and* the stop-reason tally
    /// are bit-identical at any thread count.
    #[test]
    fn hub_search_features_preserve_thread_determinism() {
        let g = three_cliques();
        let cfg = OcaConfig {
            search: crate::search::SearchConfig {
                budget_factor: 2.0,
                prune_hub_degree: 4,
                move_rule: crate::search::MoveRule::Penalized,
                plateau_moves: 6,
                tabu_tenure: 3,
                ..Default::default()
            },
            ..quick_config()
        };
        let reference = Oca::new(cfg.clone()).run(&g);
        assert!(!reference.cover.is_empty());
        for threads in [2, 3, 4] {
            let r = Oca::new(OcaConfig {
                threads,
                ..cfg.clone()
            })
            .run(&g);
            assert_eq!(r.cover, reference.cover, "threads = {threads}");
            assert_eq!(r.seeds_tried, reference.seeds_tried, "threads = {threads}");
            assert_eq!(r.halt_reason, reference.halt_reason, "threads = {threads}");
            assert_eq!(
                r.ascent_stops, reference.ascent_stops,
                "threads = {threads}"
            );
        }
    }

    /// The stop tally covers every recorded seed, and an unbudgeted run on
    /// an easy graph converges everything.
    #[test]
    fn ascent_stop_telemetry_accounts_for_every_seed() {
        let g = three_cliques();
        let r = Oca::new(quick_config()).run(&g);
        let s = r.ascent_stops;
        assert_eq!(
            s.converged + s.limited(),
            r.seeds_tried,
            "every recorded ascent is tallied exactly once"
        );
        assert_eq!(s.limited(), 0, "default config never cuts an ascent");
        // A one-move hard cap cuts every multi-move ascent.
        let capped = Oca::new(OcaConfig {
            search: crate::search::SearchConfig {
                max_moves: 1,
                ..Default::default()
            },
            ..quick_config()
        })
        .run(&g);
        assert!(capped.ascent_stops.move_cap > 0, "cap stops must be seen");
    }

    /// Pruning covered hubs changes which communities later seeds can
    /// reach, but never the validity of the cover.
    #[test]
    fn covered_hub_pruning_yields_a_valid_cover() {
        let g = three_cliques();
        let r = Oca::new(OcaConfig {
            search: crate::search::SearchConfig {
                // Every node of a 5-clique has degree ≥ 4, so after the
                // first accepted clique all its members are prunable.
                prune_hub_degree: 4,
                ..Default::default()
            },
            ..quick_config()
        })
        .run(&g);
        assert!(!r.cover.is_empty());
        for community in r.cover.communities() {
            assert!(!community.is_empty());
            for &v in community.members() {
                assert!(v.index() < 15);
            }
        }
    }

    #[test]
    fn phase_breakdown_accounts_for_the_run() {
        let g = three_cliques();
        let r = Oca::new(quick_config()).run(&g);
        assert!(r.phases.ascent_ns > 0, "ascent work must be timed");
        assert!(r.phases.dedup_ns > 0, "reduction work must be timed");
        assert_eq!(r.phases.orphan_ns, 0, "orphan assignment is off");
        let total = r.phases.ascent_ns + r.phases.dedup_ns + r.phases.merge_ns;
        assert!(
            total <= r.elapsed.as_nanos() as u64,
            "phases cannot exceed the wall clock"
        );
    }

    #[test]
    fn coverage_bitmap_tracks_sets() {
        let bm = CoverageBitmap::new(130);
        assert!(!bm.get(0) && !bm.get(129));
        assert!(bm.set(129), "first set is new");
        assert!(!bm.set(129), "second set is not");
        assert!(bm.get(129) && !bm.get(128));
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(0);
        let r = run_default(&g);
        assert!(r.cover.is_empty());
        assert_eq!(r.seeds_tried, 0);
        assert_eq!(r.halt_reason, None);
    }

    #[test]
    fn edgeless_graph_yields_no_communities() {
        let g = CsrGraph::empty(10);
        let cfg = OcaConfig {
            halting: crate::halting::HaltingConfig {
                max_seeds: 30,
                target_coverage: 1.0,
                stagnation_limit: 10,
                ..Default::default()
            },
            ..Default::default()
        };
        let r = Oca::new(cfg).run(&g);
        assert!(r.cover.is_empty(), "singletons are below min size");
        assert_eq!(r.halt_reason, Some(HaltReason::Stagnation));
    }

    #[test]
    fn orphan_assignment_covers_everything_connected() {
        let g = three_cliques();
        let cfg = OcaConfig {
            assign_orphans: true,
            ..quick_config()
        };
        let r = Oca::new(cfg).run(&g);
        assert!(r.cover.orphans().is_empty());
    }

    #[test]
    fn fixed_c_skips_spectral() {
        let g = three_cliques();
        let cfg = OcaConfig {
            c: CStrategy::Fixed(0.7),
            ..quick_config()
        };
        let r = Oca::new(cfg).run(&g);
        assert_eq!(r.c, 0.7);
        assert_eq!(r.lambda_min, 0.0);
        assert_eq!(r.cover.len(), 3);
    }

    use crate::checkpoint::{
        CheckpointConfig, CheckpointFaultSpec, CheckpointFaults, ResumePolicy,
    };
    use oca_graph::{CancelToken, DetectError};

    fn ckpt_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("oca_runner_ckpt_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// `quick_config` with a small round so runs span several checkpoint
    /// boundaries. A two-ticket round cannot cover the 15 nodes in its
    /// first round (two 5-cliques at most), so a kill after the first
    /// periodic write is always reachable.
    fn tiny_round_config() -> OcaConfig {
        OcaConfig {
            batch: 2,
            ..quick_config()
        }
    }

    #[test]
    fn checkpointed_run_matches_plain_run_and_removes_the_spent_file() {
        let g = three_cliques();
        let path = ckpt_dir("plain").join("run.ockpt");
        let plain = Oca::new(tiny_round_config()).run(&g);
        let r = Oca::new(OcaConfig {
            checkpoint: Some(CheckpointConfig::at(&path)),
            ..tiny_round_config()
        })
        .run(&g);
        assert_eq!(
            r.cover, plain.cover,
            "checkpointing must not change the cover"
        );
        assert_eq!(r.seeds_tried, plain.seeds_tried);
        assert!(
            r.checkpoint.rounds_checkpointed > 0,
            "boundaries were written"
        );
        assert!(r.checkpoint.last_bytes > 0);
        assert_eq!(r.checkpoint.resumed_from_ticket, None);
        assert!(
            !path.exists(),
            "a completed run removes its spent checkpoint"
        );
    }

    /// The tentpole contract: SIGKILL-style abandonment right after a
    /// boundary write, then a resume — under a *different* nominal seed
    /// and any thread count — reproduces the uninterrupted run bit for
    /// bit (cover, cutoff and halt reason).
    #[test]
    fn kill_between_rounds_then_resume_is_bit_identical() {
        let g = three_cliques();
        let baseline = Oca::new(tiny_round_config()).run(&g);
        for threads in [1usize, 2, 4] {
            let path = ckpt_dir("kill").join(format!("t{threads}.ockpt"));
            let faults = CheckpointFaults::new(CheckpointFaultSpec {
                torn_write_every: 0,
                kill_after_writes: 1,
            });
            let err = Oca::new(OcaConfig {
                threads,
                checkpoint: Some(CheckpointConfig {
                    path: path.clone(),
                    every_rounds: 1,
                    resume: ResumePolicy::Strict,
                    faults,
                }),
                ..tiny_round_config()
            })
            .run_ctx(&g, &DetectContext::new(0x0CA))
            .unwrap_err();
            assert!(
                matches!(err, DetectError::Cancelled { .. }),
                "threads = {threads}"
            );
            assert!(path.exists(), "the kill left a checkpoint behind");

            // Resume under a different nominal seed: the checkpoint's
            // recorded seed must win, or the remaining schedule diverges.
            let r = Oca::new(OcaConfig {
                threads,
                rng_seed: 0xDEAD_BEEF,
                checkpoint: Some(CheckpointConfig::at(&path)),
                ..tiny_round_config()
            })
            .run(&g);
            assert_eq!(r.cover, baseline.cover, "threads = {threads}");
            assert_eq!(r.seeds_tried, baseline.seeds_tried, "threads = {threads}");
            assert_eq!(r.halt_reason, baseline.halt_reason, "threads = {threads}");
            assert_eq!(r.ascent_stops, baseline.ascent_stops, "threads = {threads}");
            let resumed_from = r.checkpoint.resumed_from_ticket.expect("run resumed");
            assert!(resumed_from > 0 && resumed_from < baseline.seeds_tried as u64);
            assert!(!path.exists(), "the spent checkpoint is removed");
        }
    }

    /// Cancellation mid-round rewinds to the round start — the partial
    /// reports a whole number of rounds — and the flushed checkpoint
    /// resumes to the uninterrupted result.
    #[test]
    fn cancel_mid_round_rewinds_flushes_and_resumes_bit_identically() {
        let g = three_cliques();
        let cfg = OcaConfig {
            batch: 4,
            ..quick_config()
        };
        let baseline = Oca::new(cfg.clone()).run(&g);
        let path = ckpt_dir("cancel").join("run.ockpt");
        let token = CancelToken::new();
        let trigger = token.clone();
        // Cancel on the fifth ascent: one ticket into the second round.
        let ctx = DetectContext::new(0x0CA)
            .with_cancel(token)
            .with_progress(move |p| {
                if p.done == 5 {
                    trigger.cancel();
                }
            });
        let err = Oca::new(OcaConfig {
            checkpoint: Some(CheckpointConfig::at(&path)),
            ..cfg.clone()
        })
        .run_ctx(&g, &ctx)
        .unwrap_err();
        let DetectError::Cancelled { partial } = err else {
            panic!("expected Cancelled");
        };
        assert_eq!(
            partial.iterations % 4,
            0,
            "the partial is rewound to a round boundary"
        );
        assert!(path.exists(), "cancellation flushed a final checkpoint");

        let r = Oca::new(OcaConfig {
            checkpoint: Some(CheckpointConfig::at(&path)),
            ..cfg
        })
        .run(&g);
        assert_eq!(r.cover, baseline.cover);
        assert_eq!(r.seeds_tried, baseline.seeds_tried);
        assert_eq!(
            r.checkpoint.resumed_from_ticket,
            Some(partial.iterations as u64)
        );
    }

    #[test]
    fn strict_refuses_garbage_and_salvage_discards_it() {
        let g = three_cliques();
        let baseline = Oca::new(tiny_round_config()).run(&g);
        let path = ckpt_dir("garbage").join("run.ockpt");
        std::fs::write(&path, b"not a checkpoint at all").unwrap();

        let err = Oca::new(OcaConfig {
            checkpoint: Some(CheckpointConfig::at(&path)),
            ..tiny_round_config()
        })
        .run_ctx(&g, &DetectContext::new(0x0CA))
        .unwrap_err();
        assert!(matches!(err, DetectError::Checkpoint { .. }), "got {err}");
        assert!(path.exists(), "strict mode never deletes evidence");

        let r = Oca::new(OcaConfig {
            checkpoint: Some(CheckpointConfig {
                resume: ResumePolicy::Salvage,
                ..CheckpointConfig::at(&path)
            }),
            ..tiny_round_config()
        })
        .run(&g);
        assert_eq!(r.cover, baseline.cover, "salvage restarts from scratch");
        assert_eq!(r.checkpoint.resumed_from_ticket, None);
        assert!(!path.exists());
    }

    #[test]
    fn mismatched_config_binding_refuses_resume() {
        let g = three_cliques();
        let path = ckpt_dir("binding").join("run.ockpt");
        let faults = CheckpointFaults::new(CheckpointFaultSpec {
            torn_write_every: 0,
            kill_after_writes: 1,
        });
        Oca::new(OcaConfig {
            checkpoint: Some(CheckpointConfig {
                path: path.clone(),
                every_rounds: 1,
                resume: ResumePolicy::Strict,
                faults,
            }),
            ..tiny_round_config()
        })
        .run_ctx(&g, &DetectContext::new(0x0CA))
        .unwrap_err();
        assert!(path.exists());

        // A different batch is a different deterministic schedule: the
        // config binding must refuse the resume rather than mix them.
        let err = Oca::new(OcaConfig {
            batch: 16,
            checkpoint: Some(CheckpointConfig::at(&path)),
            ..quick_config()
        })
        .run_ctx(&g, &DetectContext::new(0x0CA))
        .unwrap_err();
        match err {
            DetectError::Checkpoint { source, .. } => {
                assert!(source.to_string().contains("config"), "got {source}");
            }
            other => panic!("expected Checkpoint, got {other}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Injected torn writes fail every periodic write; the run itself
    /// must shrug (failures are telemetry, not errors) and the target
    /// path must never contain a half-written file.
    #[test]
    fn torn_writes_are_counted_and_never_leave_a_file() {
        let g = three_cliques();
        let baseline = Oca::new(tiny_round_config()).run(&g);
        let path = ckpt_dir("torn").join("run.ockpt");
        let faults = CheckpointFaults::new(CheckpointFaultSpec {
            torn_write_every: 1,
            kill_after_writes: 0,
        });
        let ck = CheckpointConfig {
            path: path.clone(),
            every_rounds: 1,
            resume: ResumePolicy::Strict,
            faults: faults.clone(),
        };
        let r = Oca::new(OcaConfig {
            checkpoint: Some(ck),
            ..tiny_round_config()
        })
        .run(&g);
        assert_eq!(r.cover, baseline.cover);
        assert_eq!(r.checkpoint.rounds_checkpointed, 0);
        assert!(r.checkpoint.write_failures > 0);
        assert_eq!(faults.counts().torn_writes, r.checkpoint.write_failures);
        assert!(!path.exists(), "a torn write must not surface at the path");
        // No temp debris either: atomic_write_path cleans up on error.
        let dir = path.parent().unwrap();
        let debris: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(debris.is_empty(), "temp debris: {debris:?}");
    }

    #[test]
    fn every_rounds_sets_the_write_cadence() {
        let g = three_cliques();
        let dense_path = ckpt_dir("cadence").join("dense.ockpt");
        let sparse_path = ckpt_dir("cadence").join("sparse.ockpt");
        let run = |path: &std::path::Path, every: u64| {
            Oca::new(OcaConfig {
                checkpoint: Some(CheckpointConfig {
                    path: path.to_path_buf(),
                    every_rounds: every,
                    resume: ResumePolicy::Strict,
                    faults: CheckpointFaults::none(),
                }),
                ..tiny_round_config()
            })
            .run(&g)
        };
        let dense = run(&dense_path, 1);
        let sparse = run(&sparse_path, 3);
        assert_eq!(dense.cover, sparse.cover, "cadence is not schedule");
        assert!(dense.checkpoint.rounds_checkpointed > sparse.checkpoint.rounds_checkpointed);
    }

    use oca_graph::CsrGraph;
}
