//! Seeded local detection: the query-centric mode of OCA.
//!
//! The paper's setting is community *search* — "which community contains
//! node v?" — and answering that does not require the global ticket driver
//! at all. [`LocalDetector`] runs a single budgeted ascent from the query
//! node (or an explicit node set) on a [`CommunityState`] and returns the
//! containing community plus ascent telemetry. For a fixed
//! [`DetectContext::seed`] the result is deterministic: the initial set is
//! drawn from the per-query SplitMix64 stream
//! `ticket_seed(ctx.seed(), query)`, so two servers warm-started with the
//! same seed answer identically.
//!
//! Two entry points:
//! * [`LocalDetector::detect_from`] — convenience: resolves `c`, builds a
//!   fresh state, runs the ascent. Fine for one-off CLI queries.
//! * [`LocalDetector::detect_with`] — the serving hot path: the caller
//!   keeps a per-worker [`CommunityState`] (its construction is O(n)) and
//!   a precomputed `c`, so a query costs only the ascent itself.
//!
//! Cancellation is cooperative via [`DetectContext`]: the ascent polls the
//! token every few moves ([`crate::search::ascend_cancellable`]) and an
//! interrupted query returns [`DetectError::Cancelled`] carrying the
//! partial community grown so far.

use crate::config::CStrategy;
use crate::search::{ascend_cancellable, AscentOutcome, AscentStop, SearchConfig};
use crate::seed::{initial_set, splitmix64, ticket_seed, SeedStrategy};
use crate::state::CommunityState;
use oca_graph::{
    Community, CommunityDetector, Cover, CsrGraph, DetectContext, DetectError, Detection,
    GraphError, NodeId,
};
use oca_spectral::interaction_strength;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Configuration of a seeded local detection.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LocalConfig {
    /// Interaction-strength source. Spectral resolution is a whole-graph
    /// power iteration — servers resolve it once per snapshot via
    /// [`LocalDetector::resolve_c`] and use [`LocalDetector::detect_with`].
    pub c: CStrategy,
    /// How the query node expands into the ascent's initial set.
    pub seed_strategy: SeedStrategy,
    /// Ascent tunables. The registry's tuned preset enables the scaled
    /// move budget so a hub query cannot stall a serving worker.
    pub search: SearchConfig,
    /// Query node for the [`CommunityDetector`] entry point. `None` (the
    /// default) derives a node from the context seed — useful for
    /// conformance harnesses that run every detector the same way; real
    /// callers set it or use [`LocalDetector::detect_from`] directly.
    pub query: Option<NodeId>,
}

impl LocalConfig {
    /// Validates parameter ranges, reporting violations as typed errors.
    pub fn validate(&self) -> Result<(), DetectError> {
        let invalid = |message: String| DetectError::InvalidConfig {
            algorithm: "OCA-local",
            message,
        };
        if let CStrategy::Fixed(c) = self.c {
            if !(c > 0.0 && c < 1.0) {
                return Err(invalid(format!("fixed c must lie in (0, 1), got {c}")));
            }
        }
        if !(self.search.budget_factor >= 0.0 && self.search.budget_factor.is_finite()) {
            return Err(invalid(format!(
                "ascent budget factor must be finite and non-negative, got {}",
                self.search.budget_factor
            )));
        }
        if self.search.max_moves < 1 {
            return Err(invalid("need at least one move per ascent".to_string()));
        }
        Ok(())
    }
}

/// Result of one seeded local detection: the containing community plus the
/// ascent's telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalDetection {
    /// The community grown around the query set.
    pub community: Community,
    /// Its fitness `L`.
    pub fitness: f64,
    /// Moves the ascent applied.
    pub moves: usize,
    /// Whether the ascent reached a true local maximum.
    pub converged: bool,
    /// Why the ascent stopped.
    pub stop: AscentStop,
    /// The materialized initial set the ascent started from (query nodes
    /// plus the seed-strategy expansion).
    pub seeds: Vec<NodeId>,
    /// The interaction strength used.
    pub c: f64,
    /// Wall-clock time of the query (excluding state construction for the
    /// [`LocalDetector::detect_with`] path).
    pub elapsed: Duration,
}

/// Single-query community detector: one budgeted ascent from a query node,
/// no global driver. See the [module docs](self) for the two entry points.
#[derive(Debug, Clone)]
pub struct LocalDetector {
    config: LocalConfig,
}

impl LocalDetector {
    /// Validates `config` and builds the detector.
    pub fn new(config: LocalConfig) -> Result<Self, DetectError> {
        config.validate()?;
        Ok(LocalDetector { config })
    }

    /// A detector with the default configuration.
    pub fn default_detector() -> Self {
        LocalDetector {
            config: LocalConfig::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &LocalConfig {
        &self.config
    }

    /// Resolves the interaction strength for `graph` under this
    /// configuration. Spectral resolution runs a power iteration over the
    /// whole graph — call once per graph (or cover snapshot) and reuse the
    /// value through [`LocalDetector::detect_with`].
    pub fn resolve_c(&self, graph: &CsrGraph) -> f64 {
        match self.config.c {
            CStrategy::Fixed(c) => c,
            CStrategy::Spectral(ref pc) => interaction_strength(graph, pc).c,
        }
    }

    /// Convenience entry point: resolves `c`, builds a fresh state and
    /// runs the ascent. State construction is O(n) — serving loops should
    /// keep a per-worker state and call [`LocalDetector::detect_with`].
    pub fn detect_from(
        &self,
        graph: &CsrGraph,
        queries: &[NodeId],
        ctx: &DetectContext,
    ) -> Result<LocalDetection, DetectError> {
        self.check_queries(graph, queries)?;
        if ctx.is_cancelled() {
            return Err(self.cancelled(graph, queries.to_vec(), 0.0, Duration::ZERO));
        }
        let c = self.resolve_c(graph);
        let mut state = CommunityState::new(graph, c);
        self.detect_with(graph, &mut state, c, queries, ctx)
    }

    /// The serving hot path: runs the ascent on a caller-owned state with
    /// a precomputed `c`. The state must have been built on `graph` with
    /// the same `c` (it is reset before use, so reuse across queries is
    /// free). `queries` must be non-empty and in bounds.
    pub fn detect_with(
        &self,
        graph: &CsrGraph,
        state: &mut CommunityState<'_>,
        c: f64,
        queries: &[NodeId],
        ctx: &DetectContext,
    ) -> Result<LocalDetection, DetectError> {
        self.check_queries(graph, queries)?;
        let start = Instant::now();
        let seeds = self.expand(graph, queries, ctx.seed());
        ctx.tick("local", 0, Some(1));
        if ctx.is_cancelled() {
            return Err(self.cancelled(graph, seeds, 0.0, start.elapsed()));
        }
        let token = ctx.cancel_token();
        let (outcome, interrupted) =
            ascend_cancellable(state, &seeds, &self.config.search, Some(&token));
        if interrupted {
            // The state holds the partial set (best-seen under the
            // penalized rule); surface it as the typed partial result.
            let partial = self.to_detection(
                graph,
                state.to_community(),
                &outcome,
                c,
                start.elapsed(),
                false,
            );
            return Err(DetectError::cancelled(partial));
        }
        let mut community = state.to_community();
        let mut fitness = outcome.fitness;
        let mut moves = outcome.moves;
        let mut converged = outcome.converged;
        let mut stop = outcome.stop;
        // The seed expansion can pull the ascent across a bridge and the
        // removal moves may then drop the query itself — useless for a
        // query-centric caller. Re-anchor: rerun once from the full closed
        // neighborhood of the queries, whose dense core dominates the
        // ascent so stray far-side seeds get removed instead. Still
        // best-effort (a genuinely peripheral query can be removed again),
        // but deterministic and cheap.
        let anchor_seeds = if queries.iter().any(|q| !community.contains(*q)) {
            self.expand_ball(graph, queries)
        } else {
            Vec::new()
        };
        if !anchor_seeds.is_empty() && anchor_seeds != seeds {
            let (anchored, interrupted) =
                ascend_cancellable(state, &anchor_seeds, &self.config.search, Some(&token));
            if interrupted {
                let partial = self.to_detection(
                    graph,
                    state.to_community(),
                    &anchored,
                    c,
                    start.elapsed(),
                    false,
                );
                return Err(DetectError::cancelled(partial));
            }
            community = state.to_community();
            fitness = anchored.fitness;
            moves += anchored.moves;
            converged = anchored.converged;
            stop = anchored.stop;
        }
        ctx.tick("local", 1, Some(1));
        Ok(LocalDetection {
            community,
            fitness,
            moves,
            converged,
            stop,
            seeds,
            c,
            elapsed: start.elapsed(),
        })
    }

    /// Rejects empty or out-of-bounds query sets with typed errors.
    fn check_queries(&self, graph: &CsrGraph, queries: &[NodeId]) -> Result<(), DetectError> {
        if queries.is_empty() {
            return Err(DetectError::InvalidConfig {
                algorithm: "OCA-local",
                message: "need at least one query node".to_string(),
            });
        }
        let n = graph.node_count();
        for &v in queries {
            if v.index() >= n {
                return Err(DetectError::Graph(GraphError::NodeOutOfBounds {
                    node: v.raw(),
                    node_count: n as u32,
                }));
            }
        }
        Ok(())
    }

    /// The re-anchor seed set: every query node plus all its neighbors.
    fn expand_ball(&self, graph: &CsrGraph, queries: &[NodeId]) -> Vec<NodeId> {
        let mut set: Vec<NodeId> = Vec::new();
        for &q in queries {
            if !set.contains(&q) {
                set.push(q);
            }
            for &u in graph.neighbors(q) {
                if !set.contains(&u) {
                    set.push(u);
                }
            }
        }
        set
    }

    /// Materializes the initial set: every query node, each expanded under
    /// the seed strategy with its own deterministic per-query RNG stream.
    fn expand(&self, graph: &CsrGraph, queries: &[NodeId], seed: u64) -> Vec<NodeId> {
        let mut set: Vec<NodeId> = Vec::new();
        for &q in queries {
            let mut rng = StdRng::seed_from_u64(ticket_seed(seed, u64::from(q.raw())));
            for v in initial_set(self.config.seed_strategy, graph, q, &mut rng) {
                if !set.contains(&v) {
                    set.push(v);
                }
            }
        }
        set
    }

    /// Wraps a (possibly partial) community as a uniform [`Detection`].
    fn to_detection(
        &self,
        graph: &CsrGraph,
        community: Community,
        outcome: &AscentOutcome,
        c: f64,
        elapsed: Duration,
        complete: bool,
    ) -> Detection {
        let cover = Cover::new(graph.node_count(), vec![community]);
        Detection {
            cover,
            elapsed,
            complete,
            iterations: 1,
            stats: vec![
                ("c", format!("{c:.6}")),
                ("fitness", format!("{:.6}", outcome.fitness)),
                ("moves", outcome.moves.to_string()),
                ("stop", outcome.stop.label().to_string()),
            ],
        }
    }

    /// A pre-ascent cancellation: the partial cover is the bare seed set.
    fn cancelled(
        &self,
        graph: &CsrGraph,
        seeds: Vec<NodeId>,
        c: f64,
        elapsed: Duration,
    ) -> DetectError {
        let cover = if seeds.is_empty() {
            Cover::empty(graph.node_count())
        } else {
            Cover::new(graph.node_count(), vec![Community::new(seeds)])
        };
        DetectError::cancelled(Detection {
            cover,
            elapsed,
            complete: false,
            iterations: 0,
            stats: vec![("c", format!("{c:.6}"))],
        })
    }

    /// The query node the [`CommunityDetector`] entry point uses: the
    /// configured one, or a seed-derived node so harnesses that run every
    /// detector uniformly still exercise a real query.
    fn effective_query(&self, graph: &CsrGraph, seed: u64) -> NodeId {
        self.config.query.unwrap_or_else(|| {
            let n = graph.node_count() as u64;
            NodeId((splitmix64(seed) % n.max(1)) as u32)
        })
    }
}

impl CommunityDetector for LocalDetector {
    fn name(&self) -> &'static str {
        "OCA-local"
    }

    fn detect(&self, graph: &CsrGraph, ctx: &mut DetectContext) -> Result<Detection, DetectError> {
        let start = Instant::now();
        if graph.node_count() == 0 {
            return Ok(Detection {
                cover: Cover::empty(0),
                elapsed: start.elapsed(),
                complete: true,
                iterations: 1,
                stats: Vec::new(),
            });
        }
        let query = self.effective_query(graph, ctx.seed());
        let found = self.detect_from(graph, &[query], ctx)?;
        let outcome = AscentOutcome {
            fitness: found.fitness,
            moves: found.moves,
            converged: found.converged,
            stop: found.stop,
        };
        let mut detection = self.to_detection(
            graph,
            found.community,
            &outcome,
            found.c,
            start.elapsed(),
            true,
        );
        detection.stats.push(("query", query.raw().to_string()));
        Ok(detection)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oca_graph::from_edges;

    /// Two 4-cliques joined by a single bridge edge.
    fn two_cliques() -> CsrGraph {
        let mut edges = Vec::new();
        for base in [0u32, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((3, 4));
        from_edges(8, edges)
    }

    fn fixed_detector() -> LocalDetector {
        LocalDetector::new(LocalConfig {
            c: CStrategy::Fixed(0.9),
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn query_recovers_the_containing_clique() {
        let g = two_cliques();
        let det = fixed_detector();
        let ctx = DetectContext::new(42);
        let found = det.detect_from(&g, &[NodeId(1)], &ctx).unwrap();
        let raw: Vec<u32> = found.community.members().iter().map(|v| v.raw()).collect();
        assert_eq!(raw, vec![0, 1, 2, 3]);
        assert!(found.converged);
        assert_eq!(found.stop, AscentStop::Converged);
        assert!(found.community.contains(NodeId(1)));
        let other = det.detect_from(&g, &[NodeId(6)], &ctx).unwrap();
        let raw: Vec<u32> = other.community.members().iter().map(|v| v.raw()).collect();
        assert_eq!(raw, vec![4, 5, 6, 7]);
    }

    #[test]
    fn bridge_query_is_reanchored_to_its_home_clique() {
        let g = two_cliques();
        let det = fixed_detector();
        // Both bridge endpoints, every seed: the answer must contain the
        // query. (An un-anchored ascent from node 3 can wander across the
        // bridge, converge on the far clique and drop the query — the
        // ball-seeded rerun pulls it back.)
        for seed in 0..16u64 {
            let ctx = DetectContext::new(seed);
            let a = det.detect_from(&g, &[NodeId(3)], &ctx).unwrap();
            assert!(
                a.community.contains(NodeId(3)),
                "seed {seed}: {:?}",
                a.community
            );
            let b = det.detect_from(&g, &[NodeId(4)], &ctx).unwrap();
            assert!(
                b.community.contains(NodeId(4)),
                "seed {seed}: {:?}",
                b.community
            );
        }
    }

    #[test]
    fn fixed_seed_is_deterministic() {
        let g = two_cliques();
        let det = fixed_detector();
        let a = det
            .detect_from(&g, &[NodeId(2)], &DetectContext::new(7))
            .unwrap();
        let b = det
            .detect_from(&g, &[NodeId(2)], &DetectContext::new(7))
            .unwrap();
        assert_eq!(a.community, b.community);
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.moves, b.moves);
        // A different seed may draw a different initial neighborhood but
        // the query node is always in the seed set.
        let c = det
            .detect_from(&g, &[NodeId(2)], &DetectContext::new(8))
            .unwrap();
        assert!(c.seeds.contains(&NodeId(2)));
    }

    #[test]
    fn multi_node_queries_union_their_expansions() {
        let g = two_cliques();
        let det = fixed_detector();
        let ctx = DetectContext::new(1);
        let found = det.detect_from(&g, &[NodeId(0), NodeId(3)], &ctx).unwrap();
        assert!(found.seeds.contains(&NodeId(0)));
        assert!(found.seeds.contains(&NodeId(3)));
        let raw: Vec<u32> = found.community.members().iter().map(|v| v.raw()).collect();
        assert_eq!(raw, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_query_set_is_a_typed_error() {
        let g = two_cliques();
        let det = fixed_detector();
        let err = det
            .detect_from(&g, &[], &DetectContext::new(0))
            .unwrap_err();
        assert!(matches!(err, DetectError::InvalidConfig { .. }));
    }

    #[test]
    fn out_of_bounds_query_is_a_graph_error() {
        let g = two_cliques();
        let det = fixed_detector();
        let err = det
            .detect_from(&g, &[NodeId(99)], &DetectContext::new(0))
            .unwrap_err();
        match err {
            DetectError::Graph(GraphError::NodeOutOfBounds { node, node_count }) => {
                assert_eq!(node, 99);
                assert_eq!(node_count, 8);
            }
            other => panic!("expected NodeOutOfBounds, got {other}"),
        }
    }

    #[test]
    fn invalid_config_is_rejected_at_construction() {
        let err = LocalDetector::new(LocalConfig {
            c: CStrategy::Fixed(2.0),
            ..Default::default()
        })
        .unwrap_err();
        assert!(matches!(err, DetectError::InvalidConfig { .. }));
    }

    #[test]
    fn pre_cancelled_query_returns_partial_with_the_seed_set() {
        let g = two_cliques();
        let det = fixed_detector();
        let token = oca_graph::CancelToken::new();
        token.cancel();
        let ctx = DetectContext::new(3).with_cancel(token);
        let err = det.detect_from(&g, &[NodeId(0)], &ctx).unwrap_err();
        match err {
            DetectError::Cancelled { partial } => {
                assert!(!partial.complete);
                assert_eq!(partial.cover.node_count(), 8);
            }
            other => panic!("expected Cancelled, got {other}"),
        }
    }

    #[test]
    fn detect_with_reuses_a_state_across_queries() {
        let g = two_cliques();
        let det = fixed_detector();
        let ctx = DetectContext::new(5);
        let c = det.resolve_c(&g);
        let mut state = CommunityState::new(&g, c);
        let a = det
            .detect_with(&g, &mut state, c, &[NodeId(0)], &ctx)
            .unwrap();
        let b = det
            .detect_with(&g, &mut state, c, &[NodeId(5)], &ctx)
            .unwrap();
        assert_eq!(a.community.len(), 4);
        assert_eq!(b.community.len(), 4);
        assert_eq!(a.community.intersection_size(&b.community), 0);
        // Fresh-state answers match reused-state answers exactly.
        let fresh = det.detect_from(&g, &[NodeId(0)], &ctx).unwrap();
        assert_eq!(fresh.community, a.community);
    }

    #[test]
    fn trait_entry_point_uses_the_configured_query() {
        let g = two_cliques();
        let det = LocalDetector::new(LocalConfig {
            c: CStrategy::Fixed(0.9),
            query: Some(NodeId(6)),
            ..Default::default()
        })
        .unwrap();
        let detection = det.detect(&g, &mut DetectContext::new(11)).unwrap();
        assert_eq!(detection.cover.len(), 1);
        assert!(detection.cover.communities()[0].contains(NodeId(6)));
        assert!(detection.complete);
        assert_eq!(detection.iterations, 1);
        let keys: Vec<&str> = detection.stats.iter().map(|(k, _)| *k).collect();
        assert!(keys.contains(&"query") && keys.contains(&"stop"));
    }

    #[test]
    fn trait_entry_point_handles_edge_case_graphs() {
        let det = fixed_detector();
        let empty = CsrGraph::empty(0);
        let d = det.detect(&empty, &mut DetectContext::new(0)).unwrap();
        assert!(d.cover.is_empty() && d.complete);
        let singleton = CsrGraph::empty(1);
        let d = det.detect(&singleton, &mut DetectContext::new(0)).unwrap();
        assert_eq!(d.cover.len(), 1);
        assert_eq!(d.cover.communities()[0].len(), 1);
    }

    #[test]
    fn spectral_c_resolution_matches_interaction_strength() {
        let g = two_cliques();
        let det = LocalDetector::default_detector();
        let c = det.resolve_c(&g);
        assert!(c > 0.0 && c < 1.0);
        let found = det
            .detect_from(&g, &[NodeId(0)], &DetectContext::new(9))
            .unwrap();
        assert!((found.c - c).abs() < 1e-12);
    }
}
