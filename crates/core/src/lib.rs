//! # oca — Overlapping Community Search (ICDE 2010)
//!
//! A from-scratch Rust implementation of **OCA**, the overlapping community
//! search algorithm of Padrol-Sureda, Perarnau-Llobet, Pfeifle and
//! Muntés-Mulero (ICDE 2010). OCA finds the communities of a large simple
//! undirected graph as local maxima of a fitness function derived from a
//! virtual vector representation of the graph:
//!
//! 1. nodes become unit vectors with inner product `c = −1/λ_min` between
//!    neighbors ([`oca_spectral`] estimates `λ_min` with the power method);
//! 2. a subset `S` scores `ϕ(S) = ‖Σ_{v∈S} v‖² = |S| + 2·c·Ein(S)`;
//! 3. the *directed Laplacian* of `ϕ` over the subset lattice gives the
//!    fitness `L(S)` ([`fitness()`]);
//! 4. greedy add/remove ascents from random seeds find the local maxima
//!    ([`search`], [`runner`]), merged and optionally completed by the
//!    postprocessing of Section IV ([`postprocess`]).
//!
//! ## Example
//!
//! ```
//! use oca_graph::from_edges;
//! use oca::{Oca, OcaConfig};
//!
//! // Two triangles sharing node 2 — an overlapping structure.
//! let g = from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]);
//! let result = Oca::new(OcaConfig::default()).run(&g);
//! assert!(!result.cover.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checkpoint;
pub mod config;
pub mod detector;
pub mod fitness;
pub mod halting;
pub mod local;
pub mod postprocess;
pub mod runner;
pub mod search;
pub mod seed;
pub mod state;

pub use checkpoint::{
    checkpoint_summary, config_checksum, graph_checksum, CheckpointConfig, CheckpointFaultCounts,
    CheckpointFaultSpec, CheckpointFaults, CheckpointStats, CheckpointSummary, DriverCheckpoint,
    ResumePolicy,
};
pub use config::{CStrategy, OcaConfig};
pub use detector::OcaDetector;
pub use fitness::{fitness, fitness_from_definition, gain_add, gain_remove, phi, SqrtTable};
pub use halting::{AscentStopStats, HaltReason, HaltingConfig, HaltingState};
pub use local::{LocalConfig, LocalDetection, LocalDetector};
pub use postprocess::{assign_orphans, merge_similar};
pub use runner::{run_default, CoverageBitmap, Oca, OcaResult, PhaseNanos};
pub use search::{
    ascend, ascend_cancellable, local_search, AscentOutcome, AscentStop, MoveRule, SearchConfig,
    SearchOutcome, MIN_MOVE_BUDGET,
};
pub use seed::{initial_set, ticket_seed, SeedStrategy};
pub use state::CommunityState;
