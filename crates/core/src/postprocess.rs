//! Postprocessing (Section IV): merging near-duplicate communities and
//! assigning orphan nodes.
//!
//! OCA's independent seeds frequently converge to communities that are
//! "too similar, i.e. that differ in very few nodes"; the paper merges
//! them. Optionally, every node is then forced into at least one community
//! by giving each orphan to the community holding most of its neighbors.
//!
//! Both passes are built around the same primitive: a flat
//! [`EpochCounters`] array over dense community ids, so counting "how
//! many of these nodes fall into community `j`" costs one array bump per
//! observation, with O(1) logical clearing between queries — no hashing,
//! no per-query allocation, and no `O(|A| + |B|)` sorted-set
//! intersections (DESIGN.md §4a has the cost model).

use oca_graph::{Community, Cover, CsrGraph, EpochCounters, NodeId, UnionFind};

/// Merges groups of similar communities until no two communities in the
/// result have similarity `ρ` at least `threshold`. Exact duplicates
/// always merge; communities sharing no node never do.
///
/// The acceptance rule is deterministic and **order-independent**: per
/// round, a pair merges iff the Jaccard similarity of their round-start
/// member sets reaches `threshold`, and the accepted pairs are closed
/// transitively (union–find), so permuting the input communities permutes
/// nothing but the output order. (The previous implementation compared
/// candidates against the partially *grown* union, so the scan order
/// decided which pairs passed — see the regression test
/// `merging_is_independent_of_community_order`.) Newly merged groups are
/// re-tested against the rest in the next round; the fixed point is
/// reached when a round accepts nothing, and only changed groups are ever
/// re-scanned.
///
/// Cost: one inverted-index sweep per round — `O(Σ membership + Σ
/// pairwise overlap)` via an epoch-stamped counter array — instead of the
/// former per-pair sorted-set intersections repeated over whole-cover
/// passes.
pub fn merge_similar(cover: &Cover, threshold: f64) -> Cover {
    assert!((0.0..=1.0).contains(&threshold), "threshold in [0,1]");
    let k = cover.len();
    if k <= 1 {
        return cover.clone();
    }
    // Current member list per original slot. A merged group's union lives
    // at its union-find root slot; absorbed slots are left empty.
    let mut members: Vec<Vec<NodeId>> = cover
        .communities()
        .iter()
        .map(|c| c.members().to_vec())
        .collect();
    // Inverted index, built once and maintained incrementally (never
    // rebuilt per pass): for each node, the canonical root ids of the
    // live communities containing it, exactly one entry per community.
    let mut index: Vec<Vec<u32>> = vec![Vec::new(); cover.node_count()];
    for (ci, m) in members.iter().enumerate() {
        for &v in m {
            index[v.index()].push(ci as u32);
        }
    }
    let mut uf = UnionFind::new(k);
    let mut counts = EpochCounters::new(k);
    // Slots whose member set changed last round (round 1: all of them).
    // Only these are re-scanned: an unchanged pair was already tested
    // with its current sets in an earlier round.
    let mut changed: Vec<u32> = (0..k as u32).collect();
    let mut is_changed = vec![true; k];
    loop {
        // Acceptance pass. Similarities are evaluated on the round-start
        // member sets only (nothing is mutated until the pass is over),
        // which is what makes the accepted-pair set independent of the
        // scan order.
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for &ci in &changed {
            counts.begin();
            for &v in &members[ci as usize] {
                for &cj in &index[v.index()] {
                    if cj != ci {
                        counts.bump(cj);
                    }
                }
            }
            let si = members[ci as usize].len();
            for &cj in counts.touched() {
                // A changed–changed pair is seen from both sides; keep
                // one orientation.
                if is_changed[cj as usize] && cj < ci {
                    continue;
                }
                let overlap = counts.get(cj) as usize;
                let union = si + members[cj as usize].len() - overlap;
                if overlap as f64 / union as f64 >= threshold {
                    pairs.push((ci, cj));
                }
            }
        }
        for &ci in &changed {
            is_changed[ci as usize] = false;
        }
        changed.clear();
        if pairs.is_empty() {
            break;
        }
        // Merge phase: close the accepted pairs transitively, then
        // rebuild each group that grew at its new root slot.
        for &(a, b) in &pairs {
            uf.union(a as usize, b as usize);
        }
        let mut constituents: Vec<(usize, u32)> = pairs
            .iter()
            .flat_map(|&(a, b)| [a, b])
            .map(|s| (uf.find(s as usize), s))
            .collect();
        constituents.sort_unstable();
        constituents.dedup();
        let mut start = 0;
        while start < constituents.len() {
            let root = constituents[start].0;
            let mut end = start;
            while end < constituents.len() && constituents[end].0 == root {
                end += 1;
            }
            let mut merged: Vec<NodeId> = Vec::new();
            for &(_, slot) in &constituents[start..end] {
                merged.append(&mut members[slot as usize]);
            }
            merged.sort_unstable();
            merged.dedup();
            // Re-point the union's index entries at the root: drop the
            // constituents' now-stale entries, add the root once.
            for &v in &merged {
                let list = &mut index[v.index()];
                list.retain(|&e| uf.find_immutable(e as usize) != root);
                list.push(root as u32);
            }
            members[root] = merged;
            changed.push(root as u32);
            is_changed[root] = true;
            start = end;
        }
    }
    // Emit survivors ordered by each group's smallest original index —
    // the order the pass-based merge used to produce.
    let mut emitted = vec![false; k];
    let mut out: Vec<Community> = Vec::new();
    for i in 0..k {
        let root = uf.find(i);
        if !emitted[root] {
            emitted[root] = true;
            out.push(Community::new(std::mem::take(&mut members[root])));
        }
    }
    Cover::new(cover.node_count(), out)
}

/// Assigns each orphan node to the community containing the most of its
/// neighbors (Section IV's "orphan node" rule). Orphans whose neighbors are
/// all orphans too are retried for `max_rounds` rounds, so chains attached
/// to a community get absorbed; nodes in componentless limbo stay orphans.
///
/// Membership counting uses a flat epoch-stamped counter over community
/// ids (one bump per neighbor membership, O(1) reset per orphan) instead
/// of a freshly allocated `HashMap` per node; the winner rule — maximum
/// count, lowest community index on ties — is a total order, so the
/// result is unchanged.
pub fn assign_orphans(graph: &CsrGraph, cover: &Cover, max_rounds: usize) -> Cover {
    let mut communities: Vec<Vec<NodeId>> = cover
        .communities()
        .iter()
        .map(|c| c.members().to_vec())
        .collect();
    if communities.is_empty() {
        return cover.clone();
    }
    // membership[v] = communities containing v (updated as we assign).
    let mut membership: Vec<Vec<u32>> = cover.membership_index();
    let mut orphans: Vec<NodeId> = cover.orphans();
    let mut counts = EpochCounters::new(communities.len());
    for _ in 0..max_rounds {
        if orphans.is_empty() {
            break;
        }
        let mut still_orphan = Vec::new();
        let mut assigned_any = false;
        for &v in &orphans {
            // Count neighbor memberships.
            counts.begin();
            for &u in graph.neighbors(v) {
                for &ci in &membership[u.index()] {
                    counts.bump(ci);
                }
            }
            // Deterministic winner: max count, lowest index on ties.
            let winner = counts
                .touched()
                .iter()
                .map(|&ci| (counts.get(ci), std::cmp::Reverse(ci)))
                .max()
                .map(|(_, std::cmp::Reverse(ci))| ci);
            match winner {
                Some(ci) => {
                    communities[ci as usize].push(v);
                    membership[v.index()].push(ci);
                    assigned_any = true;
                }
                None => still_orphan.push(v),
            }
        }
        orphans = still_orphan;
        if !assigned_any {
            break;
        }
    }
    Cover::new(
        cover.node_count(),
        communities.into_iter().map(Community::new).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use oca_graph::from_edges;

    fn c(ids: &[u32]) -> Community {
        Community::from_raw(ids.iter().copied())
    }

    #[test]
    fn merges_exact_duplicates() {
        let cover = Cover::new(5, vec![c(&[0, 1, 2]), c(&[0, 1, 2]), c(&[3, 4])]);
        let merged = merge_similar(&cover, 0.5);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn merges_near_duplicates_above_threshold() {
        // ρ({0..4}, {0..3,5}) = 4/6 = 0.667.
        let cover = Cover::new(7, vec![c(&[0, 1, 2, 3, 4]), c(&[0, 1, 2, 3, 5])]);
        let merged = merge_similar(&cover, 0.6);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged.communities()[0].len(), 6);
        let kept = merge_similar(&cover, 0.7);
        assert_eq!(kept.len(), 2, "below-threshold pair must stay split");
    }

    #[test]
    fn merge_cascades_to_fixed_point() {
        // ρ(a,b) = ρ(b,c) = 3/5 = 0.6, ρ(a,c) = 2/6 = 0.333. At 0.5 the
        // chain collapses; at 0.6 both accepted pairs share b, so the
        // transitive closure still collapses it; at 0.65 no pair passes.
        let cover = Cover::new(
            10,
            vec![c(&[0, 1, 2, 3]), c(&[1, 2, 3, 4]), c(&[2, 3, 4, 5])],
        );
        let merged = merge_similar(&cover, 0.5);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged.communities()[0].len(), 6);
        let closed = merge_similar(&cover, 0.6);
        assert_eq!(closed.len(), 1, "a–b and b–c close transitively");
        let untouched = merge_similar(&cover, 0.65);
        assert_eq!(untouched.len(), 3);
    }

    /// A merged group is re-tested against the rest with its *union*: the
    /// pair (a,b) merges first, and only the union reaches the threshold
    /// against d — a second round must pick that up.
    #[test]
    fn merged_groups_are_retested_until_a_fixed_point() {
        // a = {0,1,2,3}, b = {0,1,2,4}: ρ = 3/5 = 0.6 — merges at 0.55.
        // d = {0,1,2,3,4,9}: ρ(a,d) = ρ(b,d) = 4/7 ≈ 0.571 > 0.55, so
        // round 1 already chains everything; use a d that only the union
        // reaches: d = {3,4,5,6,7}: ρ(a,d) = 1/8, ρ(b,d) = 1/8, but
        // ρ(a∪b, d) = 2/8 = 0.25. Threshold 0.25: round 1 merges only
        // a–b (ρ 0.6), round 2 merges the union with d.
        let cover = Cover::new(
            10,
            vec![c(&[0, 1, 2, 3]), c(&[0, 1, 2, 4]), c(&[3, 4, 5, 6, 7])],
        );
        let merged = merge_similar(&cover, 0.25);
        assert_eq!(merged.len(), 1, "the union must be re-tested against d");
        assert_eq!(merged.communities()[0].len(), 8);
        // Sanity: at a threshold between 0.25 and 0.6 only a–b merge.
        let partial = merge_similar(&cover, 0.3);
        assert_eq!(partial.len(), 2);
    }

    /// The regression for the order-dependence bug: the old pass compared
    /// candidates against the partially grown union, so permuting the
    /// input changed which pairs passed. The union-find rule may not
    /// depend on community order.
    #[test]
    fn merging_is_independent_of_community_order() {
        let comms = vec![
            c(&[0, 1, 2, 3]),
            c(&[1, 2, 3, 4]),
            c(&[2, 3, 4, 5]),
            c(&[6, 7, 8]),
            c(&[5, 6, 7, 8]),
        ];
        let normalize = |cover: &Cover| {
            let mut sets: Vec<Vec<NodeId>> = cover
                .communities()
                .iter()
                .map(|c| c.members().to_vec())
                .collect();
            sets.sort();
            sets
        };
        for threshold in [0.3, 0.5, 0.6, 0.75, 0.9] {
            let reference = normalize(&merge_similar(&Cover::new(9, comms.clone()), threshold));
            // A few fixed permutations, including the reverse.
            let orders: [&[usize]; 3] = [&[4, 3, 2, 1, 0], &[2, 0, 4, 1, 3], &[1, 4, 0, 3, 2]];
            for order in orders {
                let permuted: Vec<Community> = order.iter().map(|&i| comms[i].clone()).collect();
                let got = normalize(&merge_similar(&Cover::new(9, permuted), threshold));
                assert_eq!(got, reference, "threshold {threshold}, order {order:?}");
            }
        }
    }

    #[test]
    fn disjoint_communities_never_merge() {
        let cover = Cover::new(6, vec![c(&[0, 1, 2]), c(&[3, 4, 5])]);
        let merged = merge_similar(&cover, 0.0);
        // Threshold 0 with no shared node: the index never pairs them.
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn orphan_joins_majority_neighbor_community() {
        // Triangle community {0,1,2}; node 3 has 2 edges into it and one to
        // orphan 4.
        let g = from_edges(5, [(0, 1), (1, 2), (0, 2), (3, 0), (3, 1), (3, 4)]);
        let cover = Cover::new(5, vec![c(&[0, 1, 2])]);
        let out = assign_orphans(&g, &cover, 5);
        assert!(out.communities()[0].contains(NodeId(3)));
        assert!(out.communities()[0].contains(NodeId(4)), "chain absorbed");
        assert!(out.orphans().is_empty());
    }

    #[test]
    fn unreachable_orphans_stay() {
        let g = from_edges(4, [(0, 1), (2, 3)]);
        let cover = Cover::new(4, vec![c(&[0, 1])]);
        let out = assign_orphans(&g, &cover, 5);
        assert_eq!(out.orphans(), vec![NodeId(2), NodeId(3)]);
    }

    #[test]
    fn ties_resolve_to_lowest_community_index() {
        let g = from_edges(5, [(4, 0), (4, 2)]);
        let cover = Cover::new(5, vec![c(&[0, 1]), c(&[2, 3])]);
        let out = assign_orphans(&g, &cover, 3);
        assert!(out.communities()[0].contains(NodeId(4)));
        assert!(!out.communities()[1].contains(NodeId(4)));
    }

    #[test]
    fn empty_cover_passthrough() {
        let g = from_edges(2, [(0, 1)]);
        let cover = Cover::empty(2);
        let out = assign_orphans(&g, &cover, 3);
        assert!(out.is_empty());
        let merged = merge_similar(&cover, 0.5);
        assert!(merged.is_empty());
    }
}
