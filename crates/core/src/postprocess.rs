//! Postprocessing (Section IV): merging near-duplicate communities and
//! assigning orphan nodes.
//!
//! OCA's independent seeds frequently converge to communities that are
//! "too similar, i.e. that differ in very few nodes"; the paper merges
//! them. Optionally, every node is then forced into at least one community
//! by giving each orphan to the community holding most of its neighbors.

use oca_graph::{Community, Cover, CsrGraph, NodeId};
use std::collections::HashMap;

/// Merges communities whose pairwise similarity `ρ` is at least
/// `threshold`, repeating until a fixed point. Exact duplicates always
/// merge. Uses a shared-member index so only overlapping pairs are compared.
pub fn merge_similar(cover: &Cover, threshold: f64) -> Cover {
    assert!((0.0..=1.0).contains(&threshold), "threshold in [0,1]");
    let mut communities: Vec<Community> = cover.communities().to_vec();
    loop {
        let merged = merge_pass(&communities, threshold);
        let done = merged.len() == communities.len();
        communities = merged;
        if done {
            break;
        }
    }
    Cover::new(cover.node_count(), communities)
}

fn merge_pass(communities: &[Community], threshold: f64) -> Vec<Community> {
    let mut node_to_comms: HashMap<NodeId, Vec<usize>> = HashMap::new();
    for (ci, c) in communities.iter().enumerate() {
        for &v in c.members() {
            node_to_comms.entry(v).or_default().push(ci);
        }
    }
    let mut absorbed_into: Vec<Option<usize>> = vec![None; communities.len()];
    let mut result: Vec<Community> = Vec::new();
    let mut result_of: Vec<Option<usize>> = vec![None; communities.len()];
    for ci in 0..communities.len() {
        if absorbed_into[ci].is_some() {
            continue;
        }
        // Candidate partners: communities sharing at least one node.
        let mut candidates: Vec<usize> = communities[ci]
            .members()
            .iter()
            .flat_map(|v| node_to_comms[v].iter().copied())
            .filter(|&cj| cj > ci && absorbed_into[cj].is_none())
            .collect();
        candidates.sort_unstable();
        candidates.dedup();

        let slot = match result_of[ci] {
            Some(slot) => slot,
            None => {
                result.push(communities[ci].clone());
                result_of[ci] = Some(result.len() - 1);
                result.len() - 1
            }
        };
        for cj in candidates {
            if result[slot].similarity(&communities[cj]) >= threshold {
                result[slot] = result[slot].merged(&communities[cj]);
                absorbed_into[cj] = Some(ci);
            }
        }
    }
    result
}

/// Assigns each orphan node to the community containing the most of its
/// neighbors (Section IV's "orphan node" rule). Orphans whose neighbors are
/// all orphans too are retried for `max_rounds` rounds, so chains attached
/// to a community get absorbed; nodes in componentless limbo stay orphans.
pub fn assign_orphans(graph: &CsrGraph, cover: &Cover, max_rounds: usize) -> Cover {
    let mut communities: Vec<Vec<NodeId>> = cover
        .communities()
        .iter()
        .map(|c| c.members().to_vec())
        .collect();
    if communities.is_empty() {
        return cover.clone();
    }
    // membership[v] = communities containing v (updated as we assign).
    let mut membership: Vec<Vec<u32>> = cover.membership_index();
    let mut orphans: Vec<NodeId> = cover.orphans();
    for _ in 0..max_rounds {
        if orphans.is_empty() {
            break;
        }
        let mut still_orphan = Vec::new();
        let mut assigned_any = false;
        for &v in &orphans {
            // Count neighbor memberships.
            let mut counts: HashMap<u32, usize> = HashMap::new();
            for &u in graph.neighbors(v) {
                for &ci in &membership[u.index()] {
                    *counts.entry(ci).or_insert(0) += 1;
                }
            }
            // Deterministic winner: max count, lowest index on ties.
            let winner = counts
                .iter()
                .map(|(&ci, &cnt)| (cnt, std::cmp::Reverse(ci)))
                .max()
                .map(|(_, std::cmp::Reverse(ci))| ci);
            match winner {
                Some(ci) => {
                    communities[ci as usize].push(v);
                    membership[v.index()].push(ci);
                    assigned_any = true;
                }
                None => still_orphan.push(v),
            }
        }
        orphans = still_orphan;
        if !assigned_any {
            break;
        }
    }
    Cover::new(
        cover.node_count(),
        communities.into_iter().map(Community::new).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use oca_graph::from_edges;

    fn c(ids: &[u32]) -> Community {
        Community::from_raw(ids.iter().copied())
    }

    #[test]
    fn merges_exact_duplicates() {
        let cover = Cover::new(5, vec![c(&[0, 1, 2]), c(&[0, 1, 2]), c(&[3, 4])]);
        let merged = merge_similar(&cover, 0.5);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn merges_near_duplicates_above_threshold() {
        // ρ({0..4}, {0..3,5}) = 4/6 = 0.667.
        let cover = Cover::new(7, vec![c(&[0, 1, 2, 3, 4]), c(&[0, 1, 2, 3, 5])]);
        let merged = merge_similar(&cover, 0.6);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged.communities()[0].len(), 6);
        let kept = merge_similar(&cover, 0.7);
        assert_eq!(kept.len(), 2, "below-threshold pair must stay split");
    }

    #[test]
    fn merge_cascades_to_fixed_point() {
        // ρ(a,b) = 3/5 = 0.6, and after a∪b the union's similarity to c is
        // 3/6 = 0.5: at threshold 0.5 the chain collapses fully, at 0.6 the
        // third community survives.
        let cover = Cover::new(
            10,
            vec![c(&[0, 1, 2, 3]), c(&[1, 2, 3, 4]), c(&[2, 3, 4, 5])],
        );
        let merged = merge_similar(&cover, 0.5);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged.communities()[0].len(), 6);
        let partial = merge_similar(&cover, 0.6);
        assert_eq!(partial.len(), 2);
    }

    #[test]
    fn disjoint_communities_never_merge() {
        let cover = Cover::new(6, vec![c(&[0, 1, 2]), c(&[3, 4, 5])]);
        let merged = merge_similar(&cover, 0.0);
        // Threshold 0 with no shared node: the index never pairs them.
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn orphan_joins_majority_neighbor_community() {
        // Triangle community {0,1,2}; node 3 has 2 edges into it and one to
        // orphan 4.
        let g = from_edges(5, [(0, 1), (1, 2), (0, 2), (3, 0), (3, 1), (3, 4)]);
        let cover = Cover::new(5, vec![c(&[0, 1, 2])]);
        let out = assign_orphans(&g, &cover, 5);
        assert!(out.communities()[0].contains(NodeId(3)));
        assert!(out.communities()[0].contains(NodeId(4)), "chain absorbed");
        assert!(out.orphans().is_empty());
    }

    #[test]
    fn unreachable_orphans_stay() {
        let g = from_edges(4, [(0, 1), (2, 3)]);
        let cover = Cover::new(4, vec![c(&[0, 1])]);
        let out = assign_orphans(&g, &cover, 5);
        assert_eq!(out.orphans(), vec![NodeId(2), NodeId(3)]);
    }

    #[test]
    fn ties_resolve_to_lowest_community_index() {
        let g = from_edges(5, [(4, 0), (4, 2)]);
        let cover = Cover::new(5, vec![c(&[0, 1]), c(&[2, 3])]);
        let out = assign_orphans(&g, &cover, 3);
        assert!(out.communities()[0].contains(NodeId(4)));
        assert!(!out.communities()[1].contains(NodeId(4)));
    }

    #[test]
    fn empty_cover_passthrough() {
        let g = from_edges(2, [(0, 1)]);
        let cover = Cover::empty(2);
        let out = assign_orphans(&g, &cover, 3);
        assert!(out.is_empty());
        let merged = merge_similar(&cover, 0.5);
        assert!(merged.is_empty());
    }
}
