//! Halting criteria for the multi-seed driver.
//!
//! The paper deliberately leaves the halting criterion out of scope
//! (Section IV) while noting it must be non-trivial because not every node
//! needs a community. We provide a composite criterion: a hard seed budget,
//! a target coverage, and a stagnation window (consecutive seeds that
//! produce nothing new).

/// Composite halting configuration; the run stops when *any* criterion fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HaltingConfig {
    /// Hard upper bound on the number of seeds to try.
    pub max_seeds: usize,
    /// Stop when this fraction of nodes is covered (1.0 = full cover).
    pub target_coverage: f64,
    /// Stop after this many consecutive seeds that discover nothing new
    /// (duplicate communities or no coverage gain).
    pub stagnation_limit: usize,
    /// Stop after this many consecutive *rejected* seeds (duplicate or
    /// below the minimum community size). Tighter than
    /// [`HaltingConfig::stagnation_limit`] on hub-dominated graphs, where
    /// almost every ascent re-converges to an already-accepted community:
    /// occasional accepts with tiny coverage gains keep resetting the
    /// stagnation window, so the run can burn its whole seed budget on
    /// duplicates the dedup set rejects in O(1) but the ascent still pays
    /// for in full. `usize::MAX` (the default) disables the criterion,
    /// so configs written before it existed behave unchanged; the
    /// registry's tuned and experiment presets enable it at 500.
    pub stagnation_streak: usize,
    /// Seed-efficiency budget: stop once
    /// `seeds_tried ≥ 2 × stagnation_limit + seeds_per_covered × covered`.
    /// `0.0` disables (the default); the registry presets use 0.15.
    ///
    /// Consecutive-failure windows cannot end a hub-dominated run: on a
    /// scale-free graph, coverage saturates but *trickles* — a novel
    /// community covering one or two peripheral nodes arrives every few
    /// dozen seeds indefinitely, resetting every window while each of
    /// those seeds pays for a full multi-thousand-move ascent into the
    /// core. Healthy runs spend well under 0.05 seeds per covered node;
    /// saturated hub runs burn 25–50× that. This budget caps the spend
    /// proportionally to what the run has actually achieved, with twice
    /// the stagnation window as a warm-up floor so stagnation always gets
    /// a full window before the budget can fire. Because the floor scales
    /// with `stagnation_limit`, disabling stagnation by setting a huge
    /// limit also pushes the budget out of reach — keep the limit at a
    /// real window size when relying on this criterion.
    pub seeds_per_covered: f64,
}

impl Default for HaltingConfig {
    fn default() -> Self {
        HaltingConfig {
            max_seeds: 10_000,
            target_coverage: 0.95,
            stagnation_limit: 50,
            stagnation_streak: usize::MAX,
            seeds_per_covered: 0.0,
        }
    }
}

/// Which halting criterion fired, for telemetry (the scaling bench records
/// it per run; the decision itself is [`HaltingState::should_halt`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaltReason {
    /// The hard seed budget (`max_seeds`) was exhausted.
    SeedBudget,
    /// The target coverage fraction was reached.
    Coverage,
    /// Too many consecutive seeds discovered nothing new.
    Stagnation,
    /// Too many consecutive seeds were rejected outright (duplicates or
    /// below the minimum size).
    DuplicateStreak,
    /// The seed-efficiency budget ran out: the run spent more seeds than
    /// its coverage justifies ([`HaltingConfig::seeds_per_covered`]).
    SeedEfficiency,
}

impl HaltReason {
    /// Stable lowercase label (used in `BENCH_parallel.json`).
    pub fn label(self) -> &'static str {
        match self {
            HaltReason::SeedBudget => "seed-budget",
            HaltReason::Coverage => "coverage",
            HaltReason::Stagnation => "stagnation",
            HaltReason::DuplicateStreak => "duplicate-streak",
            HaltReason::SeedEfficiency => "seed-efficiency",
        }
    }
}

/// Per-run tally of why ascents stopped ([`crate::AscentStop`]), for
/// telemetry: a healthy budgeted run converges most ascents and spends its
/// budget only inside hub cores; a run that budget-stops everything is
/// under-budgeted. Advanced only by the driver's ordered reduction
/// (tickets recorded in ascending ticket order up to the halting cutoff),
/// so the counts — like the cover — are a deterministic function of the
/// run, independent of thread scheduling.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AscentStopStats {
    /// Ascents that reached a true local maximum.
    pub converged: usize,
    /// Ascents stopped by the hard move cap with an improving move left.
    pub move_cap: usize,
    /// Ascents stopped by the scaled per-ascent budget.
    pub move_budget: usize,
    /// Penalized-rule ascents that returned best-so-far after the plateau
    /// patience ran out.
    pub plateau: usize,
}

impl AscentStopStats {
    /// Tallies one ascent's stop reason.
    pub fn record(&mut self, stop: crate::AscentStop) {
        match stop {
            crate::AscentStop::Converged => self.converged += 1,
            crate::AscentStop::MoveCap => self.move_cap += 1,
            crate::AscentStop::MoveBudget => self.move_budget += 1,
            crate::AscentStop::Plateau => self.plateau += 1,
        }
    }

    /// Ascents cut short by any cap or budget (everything non-converged).
    pub fn limited(&self) -> usize {
        self.move_cap + self.move_budget + self.plateau
    }
}

/// Mutable halting state, updated once per processed seed.
///
/// In the parallel driver this state is only ever advanced by the ordered
/// reduction (tickets recorded in ascending order), so the point where
/// [`HaltingState::should_halt`] first fires — the *cutoff ticket* — is a
/// deterministic function of the run, not of thread scheduling.
#[derive(Debug, Clone)]
pub struct HaltingState {
    config: HaltingConfig,
    node_count: usize,
    seeds_tried: usize,
    covered: usize,
    stagnant: usize,
    rejected_streak: usize,
}

impl HaltingState {
    /// Fresh state for a graph of `node_count` nodes.
    pub fn new(config: HaltingConfig, node_count: usize) -> Self {
        HaltingState {
            config,
            node_count,
            seeds_tried: 0,
            covered: 0,
            stagnant: 0,
            rejected_streak: 0,
        }
    }

    /// Reconstructs a mid-run state from checkpointed counters. The
    /// counters must come from a round boundary of the same schedule
    /// (same config, same graph); the checkpoint layer binds and verifies
    /// that, this constructor just trusts it.
    pub fn restore(
        config: HaltingConfig,
        node_count: usize,
        seeds_tried: usize,
        covered: usize,
        stagnant: usize,
        rejected_streak: usize,
    ) -> Self {
        HaltingState {
            config,
            node_count,
            seeds_tried,
            covered,
            stagnant,
            rejected_streak,
        }
    }

    /// Records the outcome of one seed: how many previously uncovered nodes
    /// its community added, and whether the community was new (i.e.
    /// accepted into the cover rather than rejected as a duplicate or as
    /// too small).
    pub fn record(&mut self, newly_covered: usize, novel: bool) {
        self.seeds_tried += 1;
        self.covered += newly_covered;
        if novel && newly_covered > 0 {
            self.stagnant = 0;
        } else {
            self.stagnant += 1;
        }
        if novel {
            self.rejected_streak = 0;
        } else {
            self.rejected_streak += 1;
        }
    }

    /// Number of seeds processed so far.
    pub fn seeds_tried(&self) -> usize {
        self.seeds_tried
    }

    /// Current covered-node count.
    pub fn covered(&self) -> usize {
        self.covered
    }

    /// Consecutive seeds without new coverage (the stagnation window).
    pub fn stagnant(&self) -> usize {
        self.stagnant
    }

    /// Consecutive rejected seeds (the duplicate-streak window).
    pub fn rejected_streak(&self) -> usize {
        self.rejected_streak
    }

    /// Current coverage fraction.
    pub fn coverage(&self) -> f64 {
        if self.node_count == 0 {
            1.0
        } else {
            self.covered as f64 / self.node_count as f64
        }
    }

    /// True if any criterion says stop.
    pub fn should_halt(&self) -> bool {
        self.reason().is_some()
    }

    /// The first criterion that currently says stop (budget before
    /// coverage before stagnation before the duplicate streak), or `None`
    /// while the run should go on.
    pub fn reason(&self) -> Option<HaltReason> {
        if self.seeds_tried >= self.config.max_seeds {
            Some(HaltReason::SeedBudget)
        } else if self.coverage() >= self.config.target_coverage {
            Some(HaltReason::Coverage)
        } else if self.stagnant >= self.config.stagnation_limit {
            Some(HaltReason::Stagnation)
        } else if self.rejected_streak >= self.config.stagnation_streak {
            Some(HaltReason::DuplicateStreak)
        } else if self.efficiency_exhausted() {
            Some(HaltReason::SeedEfficiency)
        } else {
            None
        }
    }

    /// True when the seed-efficiency budget is enabled and spent. The
    /// warm-up floor is twice the stagnation window, so stagnation always
    /// gets a full window before the budget can end a run.
    fn efficiency_exhausted(&self) -> bool {
        if self.config.seeds_per_covered <= 0.0 {
            return false;
        }
        let floor = self.config.stagnation_limit.saturating_mul(2) as f64;
        self.seeds_tried as f64 >= floor + self.config.seeds_per_covered * self.covered as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(max_seeds: usize, cov: f64, stag: usize) -> HaltingConfig {
        HaltingConfig {
            max_seeds,
            target_coverage: cov,
            stagnation_limit: stag,
            stagnation_streak: usize::MAX,
            seeds_per_covered: 0.0,
        }
    }

    #[test]
    fn halts_on_seed_budget() {
        let mut st = HaltingState::new(cfg(3, 2.0, 100), 10);
        assert!(!st.should_halt());
        for _ in 0..3 {
            st.record(1, true);
        }
        assert!(st.should_halt());
        assert_eq!(st.seeds_tried(), 3);
    }

    #[test]
    fn halts_on_coverage() {
        let mut st = HaltingState::new(cfg(100, 0.5, 100), 10);
        st.record(4, true);
        assert!(!st.should_halt());
        st.record(1, true);
        assert!(st.should_halt(), "coverage 0.5 reached");
        assert!((st.coverage() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn halts_on_stagnation_and_resets_on_progress() {
        let mut st = HaltingState::new(cfg(100, 2.0, 3), 100);
        st.record(0, false);
        st.record(0, true); // novel but adds nothing → still stagnant
        assert!(!st.should_halt());
        st.record(5, true); // progress resets the window
        st.record(0, false);
        st.record(0, false);
        assert!(!st.should_halt());
        st.record(0, false);
        assert!(st.should_halt());
    }

    /// The duplicate streak counts consecutive *rejections* only: a novel
    /// community resets it even when it adds no coverage (which still
    /// advances the stagnation window — the two criteria are independent).
    #[test]
    fn halts_on_duplicate_streak_and_resets_on_any_accept() {
        let mut st = HaltingState::new(
            HaltingConfig {
                stagnation_streak: 3,
                ..cfg(100, 2.0, usize::MAX - 1)
            },
            100,
        );
        st.record(0, false);
        st.record(0, false);
        assert!(!st.should_halt());
        st.record(0, true); // novel, zero coverage: resets the streak
        st.record(0, false);
        st.record(0, false);
        assert!(!st.should_halt());
        st.record(0, false);
        assert_eq!(st.reason(), Some(HaltReason::DuplicateStreak));
        assert_eq!(st.reason().unwrap().label(), "duplicate-streak");
    }

    /// The efficiency budget scales the seed allowance with the coverage
    /// achieved: the hub-graph trickle (a tiny accept every few dozen
    /// seeds, which resets every consecutive-failure window forever) runs
    /// out of budget, while a run that covers nodes proportionally to the
    /// seeds it spends never trips it.
    #[test]
    fn halts_on_the_seed_efficiency_budget() {
        let config = HaltingConfig {
            stagnation_limit: 5,
            stagnation_streak: 5,
            seeds_per_covered: 0.5,
            ..cfg(100_000, 2.0, 5)
        };
        // A trickle: one 1-node novel accept every 4 seeds keeps both
        // consecutive-failure windows permanently reset, but each covered
        // node only buys 0.5 seeds of budget — the spend (1 seed/seed)
        // overtakes the budget growth (0.125/seed) and the run halts.
        let mut st = HaltingState::new(config, 1_000_000);
        st.record(20, true);
        let mut seeds = 1;
        while !st.should_halt() {
            seeds += 1;
            assert!(seeds < 1_000, "budget never fired");
            st.record(usize::from(seeds % 4 == 0), seeds % 4 == 0);
        }
        assert_eq!(st.reason(), Some(HaltReason::SeedEfficiency));
        assert_eq!(st.reason().unwrap().label(), "seed-efficiency");

        // Proportional coverage keeps the budget ahead of the spend.
        let mut st = HaltingState::new(config, 1_000_000);
        for _ in 0..200 {
            st.record(3, true);
            assert!(!st.should_halt());
        }
    }

    #[test]
    fn ascent_stop_stats_tally_each_reason() {
        use crate::AscentStop;
        let mut stats = AscentStopStats::default();
        for stop in [
            AscentStop::Converged,
            AscentStop::Converged,
            AscentStop::MoveCap,
            AscentStop::MoveBudget,
            AscentStop::MoveBudget,
            AscentStop::Plateau,
        ] {
            stats.record(stop);
        }
        assert_eq!(stats.converged, 2);
        assert_eq!(stats.move_cap, 1);
        assert_eq!(stats.move_budget, 2);
        assert_eq!(stats.plateau, 1);
        assert_eq!(stats.limited(), 4);
    }

    #[test]
    fn empty_graph_is_instantly_covered() {
        let st = HaltingState::new(HaltingConfig::default(), 0);
        assert!(st.should_halt());
        assert_eq!(st.reason(), Some(HaltReason::Coverage));
    }

    #[test]
    fn reasons_name_the_fired_criterion() {
        let mut st = HaltingState::new(cfg(2, 2.0, 100), 10);
        assert_eq!(st.reason(), None);
        st.record(1, true);
        st.record(1, true);
        assert_eq!(st.reason(), Some(HaltReason::SeedBudget));
        assert_eq!(st.reason().unwrap().label(), "seed-budget");

        let mut st = HaltingState::new(cfg(100, 2.0, 2), 10);
        st.record(0, false);
        st.record(0, false);
        assert_eq!(st.reason(), Some(HaltReason::Stagnation));
        assert_eq!(st.reason().unwrap().label(), "stagnation");
        assert_eq!(HaltReason::Coverage.label(), "coverage");
    }
}
