//! Halting criteria for the multi-seed driver.
//!
//! The paper deliberately leaves the halting criterion out of scope
//! (Section IV) while noting it must be non-trivial because not every node
//! needs a community. We provide a composite criterion: a hard seed budget,
//! a target coverage, and a stagnation window (consecutive seeds that
//! produce nothing new).

/// Composite halting configuration; the run stops when *any* criterion fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HaltingConfig {
    /// Hard upper bound on the number of seeds to try.
    pub max_seeds: usize,
    /// Stop when this fraction of nodes is covered (1.0 = full cover).
    pub target_coverage: f64,
    /// Stop after this many consecutive seeds that discover nothing new
    /// (duplicate communities or no coverage gain).
    pub stagnation_limit: usize,
}

impl Default for HaltingConfig {
    fn default() -> Self {
        HaltingConfig {
            max_seeds: 10_000,
            target_coverage: 0.95,
            stagnation_limit: 50,
        }
    }
}

/// Which halting criterion fired, for telemetry (the scaling bench records
/// it per run; the decision itself is [`HaltingState::should_halt`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaltReason {
    /// The hard seed budget (`max_seeds`) was exhausted.
    SeedBudget,
    /// The target coverage fraction was reached.
    Coverage,
    /// Too many consecutive seeds discovered nothing new.
    Stagnation,
}

impl HaltReason {
    /// Stable lowercase label (used in `BENCH_parallel.json`).
    pub fn label(self) -> &'static str {
        match self {
            HaltReason::SeedBudget => "seed-budget",
            HaltReason::Coverage => "coverage",
            HaltReason::Stagnation => "stagnation",
        }
    }
}

/// Mutable halting state, updated once per processed seed.
///
/// In the parallel driver this state is only ever advanced by the ordered
/// reduction (tickets recorded in ascending order), so the point where
/// [`HaltingState::should_halt`] first fires — the *cutoff ticket* — is a
/// deterministic function of the run, not of thread scheduling.
#[derive(Debug, Clone)]
pub struct HaltingState {
    config: HaltingConfig,
    node_count: usize,
    seeds_tried: usize,
    covered: usize,
    stagnant: usize,
}

impl HaltingState {
    /// Fresh state for a graph of `node_count` nodes.
    pub fn new(config: HaltingConfig, node_count: usize) -> Self {
        HaltingState {
            config,
            node_count,
            seeds_tried: 0,
            covered: 0,
            stagnant: 0,
        }
    }

    /// Records the outcome of one seed: how many previously uncovered nodes
    /// its community added, and whether the community was new.
    pub fn record(&mut self, newly_covered: usize, novel: bool) {
        self.seeds_tried += 1;
        self.covered += newly_covered;
        if novel && newly_covered > 0 {
            self.stagnant = 0;
        } else {
            self.stagnant += 1;
        }
    }

    /// Number of seeds processed so far.
    pub fn seeds_tried(&self) -> usize {
        self.seeds_tried
    }

    /// Current covered-node count.
    pub fn covered(&self) -> usize {
        self.covered
    }

    /// Current coverage fraction.
    pub fn coverage(&self) -> f64 {
        if self.node_count == 0 {
            1.0
        } else {
            self.covered as f64 / self.node_count as f64
        }
    }

    /// True if any criterion says stop.
    pub fn should_halt(&self) -> bool {
        self.reason().is_some()
    }

    /// The first criterion that currently says stop (budget before
    /// coverage before stagnation), or `None` while the run should go on.
    pub fn reason(&self) -> Option<HaltReason> {
        if self.seeds_tried >= self.config.max_seeds {
            Some(HaltReason::SeedBudget)
        } else if self.coverage() >= self.config.target_coverage {
            Some(HaltReason::Coverage)
        } else if self.stagnant >= self.config.stagnation_limit {
            Some(HaltReason::Stagnation)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(max_seeds: usize, cov: f64, stag: usize) -> HaltingConfig {
        HaltingConfig {
            max_seeds,
            target_coverage: cov,
            stagnation_limit: stag,
        }
    }

    #[test]
    fn halts_on_seed_budget() {
        let mut st = HaltingState::new(cfg(3, 2.0, 100), 10);
        assert!(!st.should_halt());
        for _ in 0..3 {
            st.record(1, true);
        }
        assert!(st.should_halt());
        assert_eq!(st.seeds_tried(), 3);
    }

    #[test]
    fn halts_on_coverage() {
        let mut st = HaltingState::new(cfg(100, 0.5, 100), 10);
        st.record(4, true);
        assert!(!st.should_halt());
        st.record(1, true);
        assert!(st.should_halt(), "coverage 0.5 reached");
        assert!((st.coverage() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn halts_on_stagnation_and_resets_on_progress() {
        let mut st = HaltingState::new(cfg(100, 2.0, 3), 100);
        st.record(0, false);
        st.record(0, true); // novel but adds nothing → still stagnant
        assert!(!st.should_halt());
        st.record(5, true); // progress resets the window
        st.record(0, false);
        st.record(0, false);
        assert!(!st.should_halt());
        st.record(0, false);
        assert!(st.should_halt());
    }

    #[test]
    fn empty_graph_is_instantly_covered() {
        let st = HaltingState::new(HaltingConfig::default(), 0);
        assert!(st.should_halt());
        assert_eq!(st.reason(), Some(HaltReason::Coverage));
    }

    #[test]
    fn reasons_name_the_fired_criterion() {
        let mut st = HaltingState::new(cfg(2, 2.0, 100), 10);
        assert_eq!(st.reason(), None);
        st.record(1, true);
        st.record(1, true);
        assert_eq!(st.reason(), Some(HaltReason::SeedBudget));
        assert_eq!(st.reason().unwrap().label(), "seed-budget");

        let mut st = HaltingState::new(cfg(100, 2.0, 2), 10);
        st.record(0, false);
        st.record(0, false);
        assert_eq!(st.reason(), Some(HaltReason::Stagnation));
        assert_eq!(st.reason().unwrap().label(), "stagnation");
        assert_eq!(HaltReason::Coverage.label(), "coverage");
    }
}
