//! Seed-set construction (Section IV: "a random neighborhood of the seed")
//! and the deterministic per-ticket RNG schedule of the parallel driver.

use oca_graph::{ball, CsrGraph, NodeId};
use rand::Rng;

/// The golden-ratio increment of the SplitMix64 stream.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 finalizer: a bijective 64-bit mix.
#[inline]
#[must_use]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The RNG seed of ascent number `ticket` under master seed `master`:
/// position `ticket` of the SplitMix64 stream starting at `master`.
///
/// This is the determinism contract of the parallel driver: the ascent for
/// a given ticket draws its seed node and its initial set from a stream
/// that depends only on `(master, ticket)` — never on which thread runs
/// the ticket or in what order tickets complete.
#[inline]
#[must_use]
pub fn ticket_seed(master: u64, ticket: u64) -> u64 {
    splitmix64(master.wrapping_add(ticket.wrapping_add(1).wrapping_mul(GOLDEN)))
}

/// How to turn a seed node into an initial candidate set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SeedStrategy {
    /// Start from the seed node alone.
    Singleton,
    /// The paper's choice: the seed plus each neighbor independently with
    /// the given probability.
    RandomNeighborhood {
        /// Probability of including each neighbor.
        include_probability: f64,
    },
    /// The seed plus all nodes within the given number of hops.
    Ball {
        /// Hop radius.
        radius: usize,
    },
}

impl Default for SeedStrategy {
    fn default() -> Self {
        SeedStrategy::RandomNeighborhood {
            include_probability: 0.5,
        }
    }
}

/// Materializes the initial set for `seed` under the strategy.
pub fn initial_set<R: Rng + ?Sized>(
    strategy: SeedStrategy,
    graph: &CsrGraph,
    seed: NodeId,
    rng: &mut R,
) -> Vec<NodeId> {
    match strategy {
        SeedStrategy::Singleton => vec![seed],
        SeedStrategy::RandomNeighborhood {
            include_probability,
        } => {
            let mut set = vec![seed];
            for &u in graph.neighbors(seed) {
                if rng.random::<f64>() < include_probability {
                    set.push(u);
                }
            }
            set
        }
        SeedStrategy::Ball { radius } => ball(graph, seed, radius),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oca_graph::from_edges;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn star() -> oca_graph::CsrGraph {
        from_edges(6, [(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)])
    }

    #[test]
    fn singleton_strategy() {
        let g = star();
        let mut rng = StdRng::seed_from_u64(1);
        let s = initial_set(SeedStrategy::Singleton, &g, NodeId(0), &mut rng);
        assert_eq!(s, vec![NodeId(0)]);
    }

    #[test]
    fn neighborhood_always_contains_seed() {
        let g = star();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let s = initial_set(SeedStrategy::default(), &g, NodeId(0), &mut rng);
            assert!(s.contains(&NodeId(0)));
            assert!(s.len() <= 6);
        }
    }

    #[test]
    fn neighborhood_probability_extremes() {
        let g = star();
        let mut rng = StdRng::seed_from_u64(3);
        let all = initial_set(
            SeedStrategy::RandomNeighborhood {
                include_probability: 1.0,
            },
            &g,
            NodeId(0),
            &mut rng,
        );
        assert_eq!(all.len(), 6);
        let none = initial_set(
            SeedStrategy::RandomNeighborhood {
                include_probability: 0.0,
            },
            &g,
            NodeId(0),
            &mut rng,
        );
        assert_eq!(none, vec![NodeId(0)]);
    }

    #[test]
    fn ticket_seeds_are_deterministic_and_distinct() {
        let a: Vec<u64> = (0..256).map(|t| ticket_seed(0x0CA, t)).collect();
        let b: Vec<u64> = (0..256).map(|t| ticket_seed(0x0CA, t)).collect();
        assert_eq!(a, b, "same (master, ticket) must give the same seed");
        let distinct: std::collections::BTreeSet<_> = a.iter().collect();
        assert_eq!(distinct.len(), a.len(), "ticket seeds collided");
        // Different masters give different streams.
        assert_ne!(ticket_seed(1, 0), ticket_seed(2, 0));
    }

    #[test]
    fn ball_strategy_radius() {
        let g = from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let mut rng = StdRng::seed_from_u64(4);
        let b = initial_set(SeedStrategy::Ball { radius: 2 }, &g, NodeId(0), &mut rng);
        assert_eq!(b.len(), 3, "0, 1, 2");
    }
}
