//! Seed-set construction (Section IV: "a random neighborhood of the seed").

use oca_graph::{ball, CsrGraph, NodeId};
use rand::Rng;

/// How to turn a seed node into an initial candidate set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SeedStrategy {
    /// Start from the seed node alone.
    Singleton,
    /// The paper's choice: the seed plus each neighbor independently with
    /// the given probability.
    RandomNeighborhood {
        /// Probability of including each neighbor.
        include_probability: f64,
    },
    /// The seed plus all nodes within the given number of hops.
    Ball {
        /// Hop radius.
        radius: usize,
    },
}

impl Default for SeedStrategy {
    fn default() -> Self {
        SeedStrategy::RandomNeighborhood {
            include_probability: 0.5,
        }
    }
}

/// Materializes the initial set for `seed` under the strategy.
pub fn initial_set<R: Rng + ?Sized>(
    strategy: SeedStrategy,
    graph: &CsrGraph,
    seed: NodeId,
    rng: &mut R,
) -> Vec<NodeId> {
    match strategy {
        SeedStrategy::Singleton => vec![seed],
        SeedStrategy::RandomNeighborhood {
            include_probability,
        } => {
            let mut set = vec![seed];
            for &u in graph.neighbors(seed) {
                if rng.random::<f64>() < include_probability {
                    set.push(u);
                }
            }
            set
        }
        SeedStrategy::Ball { radius } => ball(graph, seed, radius),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oca_graph::from_edges;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn star() -> oca_graph::CsrGraph {
        from_edges(6, [(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)])
    }

    #[test]
    fn singleton_strategy() {
        let g = star();
        let mut rng = StdRng::seed_from_u64(1);
        let s = initial_set(SeedStrategy::Singleton, &g, NodeId(0), &mut rng);
        assert_eq!(s, vec![NodeId(0)]);
    }

    #[test]
    fn neighborhood_always_contains_seed() {
        let g = star();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let s = initial_set(SeedStrategy::default(), &g, NodeId(0), &mut rng);
            assert!(s.contains(&NodeId(0)));
            assert!(s.len() <= 6);
        }
    }

    #[test]
    fn neighborhood_probability_extremes() {
        let g = star();
        let mut rng = StdRng::seed_from_u64(3);
        let all = initial_set(
            SeedStrategy::RandomNeighborhood {
                include_probability: 1.0,
            },
            &g,
            NodeId(0),
            &mut rng,
        );
        assert_eq!(all.len(), 6);
        let none = initial_set(
            SeedStrategy::RandomNeighborhood {
                include_probability: 0.0,
            },
            &g,
            NodeId(0),
            &mut rng,
        );
        assert_eq!(none, vec![NodeId(0)]);
    }

    #[test]
    fn ball_strategy_radius() {
        let g = from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let mut rng = StdRng::seed_from_u64(4);
        let b = initial_set(SeedStrategy::Ball { radius: 2 }, &g, NodeId(0), &mut rng);
        assert_eq!(b.len(), 3, "0, 1, 2");
    }
}
