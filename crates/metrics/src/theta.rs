//! The paper's quality metrics: similarity `ρ` (V.1) and suitability `Θ` (V.2).

use oca_graph::{Community, Cover};

/// The paper's similarity `ρ(C, D) = 1 − (|C\D| + |D\C|)/|C∪D|` (eq. V.1),
/// algebraically the Jaccard index. Delegates to
/// [`Community::similarity`].
pub fn rho(c: &Community, d: &Community) -> f64 {
    c.similarity(d)
}

/// For each observed community, the index of the reference community it is
/// most similar to (`argmax_k ρ(F_k, O_j)`; first index on ties).
/// Returns `None` when the reference structure is empty.
pub fn best_match_indices(reference: &Cover, observed: &Cover) -> Option<Vec<usize>> {
    if reference.is_empty() {
        return None;
    }
    let refs = reference.communities();
    Some(
        observed
            .communities()
            .iter()
            .map(|oj| {
                let mut best = 0usize;
                let mut best_rho = f64::NEG_INFINITY;
                for (k, fk) in refs.iter().enumerate() {
                    let r = rho(fk, oj);
                    if r > best_rho {
                        best_rho = r;
                        best = k;
                    }
                }
                best
            })
            .collect(),
    )
}

/// The paper's suitability `Θ(F, O)` (eq. V.2) of an observed community
/// structure `O` against the real structure `F`:
///
/// `Θ(F, O) = (1/ℓ) Σ_i (1/|V_i|) Σ_{O_j ∈ V_i} ρ(F_i, O_j)`
///
/// where `V_i` is the set of observed communities whose best match is `F_i`.
/// Reference communities with no matched observation contribute 0, so a
/// structure that misses real communities is penalized. Ranges in `[0, 1]`;
/// 1 means identical structures. Defined for overlapping covers.
///
/// Returns 0 when either structure is empty (completely different), except
/// two empty structures which are identical (1).
pub fn theta(reference: &Cover, observed: &Cover) -> f64 {
    if reference.is_empty() && observed.is_empty() {
        return 1.0;
    }
    if reference.is_empty() || observed.is_empty() {
        return 0.0;
    }
    let refs = reference.communities();
    let obs = observed.communities();
    let assignment = best_match_indices(reference, observed).expect("reference non-empty");
    let mut rho_sum = vec![0.0f64; refs.len()];
    let mut counts = vec![0usize; refs.len()];
    for (j, &i) in assignment.iter().enumerate() {
        rho_sum[i] += rho(&refs[i], &obs[j]);
        counts[i] += 1;
    }
    let total: f64 = rho_sum
        .iter()
        .zip(&counts)
        .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
        .sum();
    total / refs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(ids: &[u32]) -> Community {
        Community::from_raw(ids.iter().copied())
    }

    fn cover(n: usize, comms: &[&[u32]]) -> Cover {
        Cover::new(n, comms.iter().map(|ids| c(ids)).collect())
    }

    #[test]
    fn identical_structures_score_one() {
        let f = cover(10, &[&[0, 1, 2], &[3, 4, 5], &[6, 7, 8, 9]]);
        assert!((theta(&f, &f) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_structures_score_zero() {
        let f = cover(8, &[&[0, 1, 2, 3]]);
        let o = cover(8, &[&[4, 5, 6, 7]]);
        assert_eq!(theta(&f, &o), 0.0);
    }

    #[test]
    fn partial_overlap_intermediate() {
        let f = cover(6, &[&[0, 1, 2, 3]]);
        let o = cover(6, &[&[0, 1, 2, 3, 4, 5]]);
        // ρ = 4/6.
        assert!((theta(&f, &o) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn missing_reference_community_penalized() {
        let f = cover(8, &[&[0, 1, 2, 3], &[4, 5, 6, 7]]);
        let o = cover(8, &[&[0, 1, 2, 3]]);
        // First community matched perfectly, second unmatched → (1 + 0)/2.
        assert!((theta(&f, &o) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn duplicate_observations_are_averaged_not_summed() {
        let f = cover(8, &[&[0, 1, 2, 3]]);
        // Two observations both matching F1, one perfect, one half.
        let o = cover(8, &[&[0, 1, 2, 3], &[0, 1]]);
        // ρ values: 1 and 0.5; V_1 = both → average 0.75.
        assert!((theta(&f, &o) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn overlapping_covers_are_supported() {
        let f = cover(6, &[&[0, 1, 2, 3], &[3, 4, 5]]);
        let o = cover(6, &[&[0, 1, 2, 3], &[3, 4, 5]]);
        assert!((theta(&f, &o) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cases() {
        let f = cover(5, &[&[0, 1]]);
        let e = Cover::empty(5);
        assert_eq!(theta(&f, &e), 0.0);
        assert_eq!(theta(&e, &f), 0.0);
        assert_eq!(theta(&e, &e), 1.0);
    }

    #[test]
    fn best_match_prefers_higher_rho() {
        let f = cover(10, &[&[0, 1, 2], &[5, 6, 7, 8]]);
        let o = cover(10, &[&[5, 6, 7], &[0, 1]]);
        let m = best_match_indices(&f, &o).unwrap();
        assert_eq!(m, vec![1, 0]);
    }

    #[test]
    fn theta_is_not_symmetric() {
        // The measure is defined w.r.t. a reference; check the asymmetry is
        // real rather than accidental.
        let f = cover(8, &[&[0, 1, 2, 3], &[4, 5, 6, 7]]);
        let o = cover(8, &[&[0, 1, 2, 3]]);
        assert!((theta(&f, &o) - 0.5).abs() < 1e-12);
        assert!((theta(&o, &f) - 0.5).abs() < 1e-12);
        // Cover::new deduplicates nothing, but two identical communities
        // both match F1: observed duplicates are averaged (0.5), and as a
        // reference, ties send everything to the first copy (0.25).
        let o2 = cover(8, &[&[0, 1, 2, 3], &[0, 1, 2, 3]]);
        assert!((theta(&f, &o2) - 0.5).abs() < 1e-12);
        assert!((theta(&o2, &f) - 0.25).abs() < 1e-12);
    }
}
