//! Omega index: chance-corrected pairwise agreement for overlapping covers.
//!
//! The omega index (Collins & Dent, 1988) generalizes the adjusted Rand
//! index to overlaps: two covers agree on a node pair if the pair co-occurs
//! in the *same number* of communities in both. Only pairs inside some
//! community need explicit counting, so the cost is `O(Σ |C|²)`, not
//! `O(n²)`.

use oca_graph::Cover;
use std::collections::HashMap;

/// Counts, for every node pair that shares at least one community, how many
/// communities contain both.
fn pair_counts(cover: &Cover) -> HashMap<(u32, u32), u32> {
    let mut counts = HashMap::new();
    for c in cover.communities() {
        let m = c.members();
        for (i, &u) in m.iter().enumerate() {
            for &v in &m[i + 1..] {
                *counts.entry((u.raw(), v.raw())).or_insert(0u32) += 1;
            }
        }
    }
    counts
}

/// Histogram over co-occurrence multiplicities; index 0 is inferred from the
/// total pair count.
fn histogram(counts: &HashMap<(u32, u32), u32>, total_pairs: u64) -> Vec<u64> {
    let mut hist = vec![0u64];
    for &c in counts.values() {
        let c = c as usize;
        if hist.len() <= c {
            hist.resize(c + 1, 0);
        }
        hist[c] += 1;
    }
    let nonzero: u64 = hist.iter().skip(1).sum();
    hist[0] = total_pairs - nonzero;
    hist
}

/// The omega index of two covers over the same node set, usually in
/// `[−1, 1]`; 1 = identical, 0 = agreement expected by chance.
///
/// # Panics
/// Panics if the covers disagree on node count or have fewer than 2 nodes.
pub fn omega_index(a: &Cover, b: &Cover) -> f64 {
    assert_eq!(
        a.node_count(),
        b.node_count(),
        "covers over different node sets"
    );
    let n = a.node_count() as u64;
    assert!(n >= 2, "omega needs at least two nodes");
    let total_pairs = n * (n - 1) / 2;

    let ca = pair_counts(a);
    let cb = pair_counts(b);

    // Observed agreement: pairs with equal multiplicity in both covers.
    let mut agree: u64 = 0;
    for (pair, &ka) in &ca {
        let kb = cb.get(pair).copied().unwrap_or(0);
        if ka == kb {
            agree += 1;
        }
    }
    // Pairs appearing in only one of the maps disagree (other side is 0);
    // pairs absent from both agree at multiplicity 0.
    let only_b = cb.keys().filter(|p| !ca.contains_key(*p)).count() as u64;
    let union_nonzero = ca.len() as u64 + only_b;
    agree += total_pairs - union_nonzero;

    let observed = agree as f64 / total_pairs as f64;

    // Expected agreement from the multiplicity histograms.
    let ha = histogram(&ca, total_pairs);
    let hb = histogram(&cb, total_pairs);
    let expected: f64 = ha
        .iter()
        .zip(hb.iter())
        .map(|(&x, &y)| (x as f64 / total_pairs as f64) * (y as f64 / total_pairs as f64))
        .sum();

    if (1.0 - expected).abs() < 1e-15 {
        // Degenerate: both covers have a constant multiplicity everywhere.
        return if (observed - 1.0).abs() < 1e-15 {
            1.0
        } else {
            0.0
        };
    }
    (observed - expected) / (1.0 - expected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oca_graph::Community;

    fn cover(n: usize, comms: &[&[u32]]) -> Cover {
        Cover::new(
            n,
            comms
                .iter()
                .map(|ids| Community::from_raw(ids.iter().copied()))
                .collect(),
        )
    }

    #[test]
    fn identical_covers_score_one() {
        let a = cover(8, &[&[0, 1, 2, 3], &[4, 5, 6, 7]]);
        assert!((omega_index(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identical_overlapping_covers_score_one() {
        let a = cover(6, &[&[0, 1, 2, 3], &[2, 3, 4, 5]]);
        assert!((omega_index(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn different_partitions_score_below_one() {
        let a = cover(8, &[&[0, 1, 2, 3], &[4, 5, 6, 7]]);
        let b = cover(8, &[&[0, 1, 4, 5], &[2, 3, 6, 7]]);
        let w = omega_index(&a, &b);
        assert!(w < 0.5, "shuffled partition scored {w}");
    }

    #[test]
    fn multiplicity_matters() {
        // Pair (0,1) co-occurs twice in a, once in b → disagreement even
        // though both contain the pair.
        let a = cover(4, &[&[0, 1, 2], &[0, 1, 3]]);
        let b = cover(4, &[&[0, 1, 2], &[0, 3]]);
        assert!(omega_index(&a, &b) < 1.0);
    }

    #[test]
    fn symmetric() {
        let a = cover(7, &[&[0, 1, 2, 3], &[3, 4, 5, 6]]);
        let b = cover(7, &[&[0, 1, 2], &[3, 4], &[5, 6]]);
        assert!((omega_index(&a, &b) - omega_index(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn empty_covers_agree() {
        let e = Cover::empty(5);
        assert!((omega_index(&e, &e) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different node sets")]
    fn mismatched_node_counts_panic() {
        omega_index(&Cover::empty(3), &Cover::empty(4));
    }
}
