//! Average best-match F1 between covers.

use oca_graph::{Community, Cover};

/// F1 score between two communities: harmonic mean of precision and recall
/// of `found` against `truth`.
pub fn community_f1(truth: &Community, found: &Community) -> f64 {
    let inter = truth.intersection_size(found);
    if inter == 0 {
        return 0.0;
    }
    let precision = inter as f64 / found.len() as f64;
    let recall = inter as f64 / truth.len() as f64;
    2.0 * precision * recall / (precision + recall)
}

/// One-directional average best-match F1: for each community in `from`,
/// the best F1 against any community in `to`, averaged.
fn directional_f1(from: &Cover, to: &Cover) -> f64 {
    if from.is_empty() {
        return 0.0;
    }
    let total: f64 = from
        .communities()
        .iter()
        .map(|a| {
            to.communities()
                .iter()
                .map(|b| community_f1(a, b))
                .fold(0.0, f64::max)
        })
        .sum();
    total / from.len() as f64
}

/// Symmetric average F1 — the mean of both directional scores. 1 means
/// every community in each cover has an exact counterpart in the other.
pub fn average_f1(truth: &Cover, found: &Cover) -> f64 {
    if truth.is_empty() && found.is_empty() {
        return 1.0;
    }
    0.5 * (directional_f1(truth, found) + directional_f1(found, truth))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(ids: &[u32]) -> Community {
        Community::from_raw(ids.iter().copied())
    }

    fn cover(n: usize, comms: &[&[u32]]) -> Cover {
        Cover::new(n, comms.iter().map(|ids| c(ids)).collect())
    }

    #[test]
    fn identical_communities_score_one() {
        let a = c(&[0, 1, 2]);
        assert!((community_f1(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_communities_score_zero() {
        assert_eq!(community_f1(&c(&[0, 1]), &c(&[2, 3])), 0.0);
    }

    #[test]
    fn precision_recall_balance() {
        // truth {0..3}, found {0,1}: precision 1, recall 0.5 → F1 = 2/3.
        let f1 = community_f1(&c(&[0, 1, 2, 3]), &c(&[0, 1]));
        assert!((f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn average_f1_identical_covers() {
        let a = cover(9, &[&[0, 1, 2], &[3, 4, 5], &[6, 7, 8]]);
        assert!((average_f1(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn average_f1_penalizes_missing() {
        let truth = cover(8, &[&[0, 1, 2, 3], &[4, 5, 6, 7]]);
        let found = cover(8, &[&[0, 1, 2, 3]]);
        // truth→found: (1 + 0)/2 = 0.5; found→truth: 1. Mean 0.75.
        assert!((average_f1(&truth, &found) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_cases() {
        let a = cover(4, &[&[0, 1]]);
        let e = Cover::empty(4);
        assert_eq!(average_f1(&e, &e), 1.0);
        assert_eq!(average_f1(&a, &e), 0.0);
    }
}
