//! Modularity measures: Newman's `Q` for partitions and the extended
//! overlapping modularity `EQ` (Shen et al. 2009).
//!
//! Neither appears in the OCA paper itself, but modularity is the standard
//! intrinsic score of the non-overlapping literature the paper contrasts
//! against (\[6\], \[11\]), and `EQ` is its accepted overlapping extension —
//! useful as a ground-truth-free cross-check of every algorithm's output.

use oca_graph::{Cover, CsrGraph};

/// Newman modularity `Q` of a cover treated as a partition:
/// `Q = Σ_c [ Ein_c/m − (vol_c / 2m)² ]`.
///
/// Overlaps are permitted in the input but each shared node contributes to
/// every community it belongs to, which inflates volumes; prefer
/// [`extended_modularity`] for genuinely overlapping covers. Returns 0 for
/// edgeless graphs.
pub fn modularity(graph: &CsrGraph, cover: &Cover) -> f64 {
    let m = graph.edge_count() as f64;
    if m == 0.0 {
        return 0.0;
    }
    let mut q = 0.0;
    for c in cover.communities() {
        let ein = c.internal_edges(graph) as f64;
        let vol: usize = c.members().iter().map(|&v| graph.degree(v)).sum();
        q += ein / m - (vol as f64 / (2.0 * m)).powi(2);
    }
    q
}

/// Extended overlapping modularity `EQ` (Shen et al.):
///
/// `EQ = (1/2m) Σ_c Σ_{i,j ∈ c} [A_ij − k_i k_j / 2m] / (O_i O_j)`
///
/// where `O_i` is the number of communities containing node `i`. Equals
/// Newman's `Q` on partitions. Returns 0 for edgeless graphs.
pub fn extended_modularity(graph: &CsrGraph, cover: &Cover) -> f64 {
    let m2 = 2.0 * graph.edge_count() as f64;
    if m2 == 0.0 {
        return 0.0;
    }
    let memberships = cover.membership_index();
    let o = |v: oca_graph::NodeId| memberships[v.index()].len().max(1) as f64;
    let mut eq = 0.0;
    for c in cover.communities() {
        // Adjacency term: Σ_{i,j∈c} A_ij/(O_i O_j) — iterate internal edge
        // endpoints (each unordered pair counted twice, as the formula
        // does over ordered pairs).
        let mut adj = 0.0;
        for &v in c.members() {
            let ov = o(v);
            for &u in graph.neighbors(v) {
                if c.contains(u) {
                    adj += 1.0 / (ov * o(u));
                }
            }
        }
        // Null-model term: (Σ_{i∈c} k_i/O_i)².
        let weighted_vol: f64 = c
            .members()
            .iter()
            .map(|&v| graph.degree(v) as f64 / o(v))
            .sum();
        eq += adj - weighted_vol * weighted_vol / m2;
    }
    eq / m2
}

#[cfg(test)]
mod tests {
    use super::*;
    use oca_graph::{from_edges, Community, Cover};

    fn two_triangles() -> oca_graph::CsrGraph {
        from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
    }

    fn partition() -> Cover {
        Cover::new(
            6,
            vec![
                Community::from_raw([0, 1, 2]),
                Community::from_raw([3, 4, 5]),
            ],
        )
    }

    #[test]
    fn good_partition_has_positive_modularity() {
        let g = two_triangles();
        let q = modularity(&g, &partition());
        assert!(q > 0.3, "q = {q}");
    }

    #[test]
    fn whole_graph_has_zero_modularity() {
        let g = two_triangles();
        let blob = Cover::new(6, vec![Community::from_raw(0..6)]);
        assert!(modularity(&g, &blob).abs() < 1e-12);
    }

    #[test]
    fn eq_equals_q_on_partitions() {
        let g = two_triangles();
        let p = partition();
        assert!((modularity(&g, &p) - extended_modularity(&g, &p)).abs() < 1e-12);
    }

    #[test]
    fn eq_handles_overlap_gracefully() {
        // Two triangles sharing node 2.
        let g = from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]);
        let overlap = Cover::new(
            5,
            vec![
                Community::from_raw([0, 1, 2]),
                Community::from_raw([2, 3, 4]),
            ],
        );
        let eq = extended_modularity(&g, &overlap);
        // Hand computation: each triangle contributes adj 4 − null 3 = 1,
        // so EQ = 2/(2m) = 2/12.
        assert!((eq - 2.0 / 12.0).abs() < 1e-12, "eq = {eq}");
        // The overlapping split should beat one blob.
        let blob = Cover::new(5, vec![Community::from_raw(0..5)]);
        assert!(eq > extended_modularity(&g, &blob));
    }

    #[test]
    fn edgeless_graph_scores_zero() {
        let g = oca_graph::CsrGraph::empty(4);
        let cover = Cover::new(4, vec![Community::from_raw([0, 1])]);
        assert_eq!(modularity(&g, &cover), 0.0);
        assert_eq!(extended_modularity(&g, &cover), 0.0);
    }

    #[test]
    fn random_split_scores_near_zero() {
        let g = two_triangles();
        let bad = Cover::new(
            6,
            vec![
                Community::from_raw([0, 3]),
                Community::from_raw([1, 4]),
                Community::from_raw([2, 5]),
            ],
        );
        assert!(modularity(&g, &bad) < 0.05);
    }
}
