//! Overlapping normalized mutual information (LFK variant).
//!
//! The NMI extension of Lancichinetti–Fortunato–Kertész (paper ref \[8\],
//! appendix) compares covers by treating each community as a binary random
//! variable over nodes and measuring the best-match normalized conditional
//! entropy in both directions. Unlike the paper's own Θ this is symmetric,
//! and it is the de-facto standard in the later literature, so we ship it
//! as a second opinion on every quality experiment.

use oca_graph::Cover;

fn h(p: f64) -> f64 {
    if p <= 0.0 {
        0.0
    } else {
        -p * p.log2()
    }
}

/// Entropy of a binary indicator with probability `p`.
fn entropy_binary(p: f64) -> f64 {
    h(p) + h(1.0 - p)
}

/// Conditional entropy H(Xi | Yj) with the LFK admissibility constraint;
/// returns `None` when the pair is rejected.
fn conditional_pair(xi: &[bool], yj: &[bool], n: f64) -> Option<f64> {
    let mut n11 = 0usize;
    let mut n10 = 0usize;
    let mut n01 = 0usize;
    for (a, b) in xi.iter().zip(yj) {
        match (a, b) {
            (true, true) => n11 += 1,
            (true, false) => n10 += 1,
            (false, true) => n01 += 1,
            (false, false) => {}
        }
    }
    let n00 = xi.len() - n11 - n10 - n01;
    let (p11, p10, p01, p00) = (
        n11 as f64 / n,
        n10 as f64 / n,
        n01 as f64 / n,
        n00 as f64 / n,
    );
    // LFK constraint: the pair must carry more "equal" than "unequal" info,
    // otherwise complementary sets would spuriously match.
    if h(p11) + h(p00) < h(p10) + h(p01) {
        return None;
    }
    let joint = h(p11) + h(p10) + h(p01) + h(p00);
    let hy = entropy_binary(p11 + p01);
    Some(joint - hy)
}

fn indicator(cover: &Cover, idx: usize) -> Vec<bool> {
    let mut v = vec![false; cover.node_count()];
    for &node in cover.communities()[idx].members() {
        v[node.index()] = true;
    }
    v
}

/// Normalized conditional entropy `H(X|Y)_norm ∈ [0, 1]`.
fn normalized_conditional(x: &Cover, y: &Cover) -> f64 {
    let n = x.node_count() as f64;
    let xs: Vec<Vec<bool>> = (0..x.len()).map(|i| indicator(x, i)).collect();
    let ys: Vec<Vec<bool>> = (0..y.len()).map(|j| indicator(y, j)).collect();
    let mut total = 0.0;
    let mut counted = 0usize;
    for xi in &xs {
        let px = xi.iter().filter(|&&b| b).count() as f64 / n;
        let hx = entropy_binary(px);
        if hx == 0.0 {
            continue;
        }
        let best = ys
            .iter()
            .filter_map(|yj| conditional_pair(xi, yj, n))
            .fold(f64::INFINITY, f64::min);
        let cond = if best.is_finite() { best } else { hx };
        total += (cond / hx).clamp(0.0, 1.0);
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

/// The LFK overlapping NMI between two covers, in `[0, 1]`
/// (1 = identical structures).
///
/// # Panics
/// Panics if the covers disagree on the node count.
pub fn overlapping_nmi(a: &Cover, b: &Cover) -> f64 {
    assert_eq!(
        a.node_count(),
        b.node_count(),
        "covers must be over the same node set"
    );
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    1.0 - 0.5 * (normalized_conditional(a, b) + normalized_conditional(b, a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use oca_graph::Community;

    fn cover(n: usize, comms: &[&[u32]]) -> Cover {
        Cover::new(
            n,
            comms
                .iter()
                .map(|ids| Community::from_raw(ids.iter().copied()))
                .collect(),
        )
    }

    #[test]
    fn identical_covers_score_one() {
        let a = cover(9, &[&[0, 1, 2], &[3, 4, 5], &[6, 7, 8]]);
        assert!((overlapping_nmi(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_covers_score_low() {
        // Orthogonal slicings of a 4x4 grid of nodes.
        let rows = cover(
            16,
            &[
                &[0, 1, 2, 3],
                &[4, 5, 6, 7],
                &[8, 9, 10, 11],
                &[12, 13, 14, 15],
            ],
        );
        let cols = cover(
            16,
            &[
                &[0, 4, 8, 12],
                &[1, 5, 9, 13],
                &[2, 6, 10, 14],
                &[3, 7, 11, 15],
            ],
        );
        let nmi = overlapping_nmi(&rows, &cols);
        assert!(nmi < 0.3, "independent structures scored {nmi}");
    }

    #[test]
    fn small_perturbation_scores_high() {
        let a = cover(12, &[&[0, 1, 2, 3, 4, 5], &[6, 7, 8, 9, 10, 11]]);
        let b = cover(12, &[&[0, 1, 2, 3, 4], &[5, 6, 7, 8, 9, 10, 11]]);
        let nmi = overlapping_nmi(&a, &b);
        assert!(nmi > 0.5, "one-node move scored {nmi}");
        assert!(nmi < 1.0);
    }

    #[test]
    fn symmetric() {
        let a = cover(10, &[&[0, 1, 2, 3, 4], &[5, 6, 7, 8, 9]]);
        let b = cover(10, &[&[0, 1, 2], &[3, 4, 5, 6], &[7, 8, 9]]);
        assert!((overlapping_nmi(&a, &b) - overlapping_nmi(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn handles_overlap() {
        let a = cover(7, &[&[0, 1, 2, 3], &[3, 4, 5, 6]]);
        assert!((overlapping_nmi(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cases() {
        let a = cover(5, &[&[0, 1, 2]]);
        let e = Cover::empty(5);
        assert_eq!(overlapping_nmi(&a, &e), 0.0);
        assert_eq!(overlapping_nmi(&e, &e), 1.0);
    }

    #[test]
    #[should_panic(expected = "same node set")]
    fn node_count_mismatch_panics() {
        let a = cover(5, &[&[0, 1]]);
        let b = cover(6, &[&[0, 1]]);
        overlapping_nmi(&a, &b);
    }
}
