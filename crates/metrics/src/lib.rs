//! # oca-metrics — community quality metrics for the OCA reproduction
//!
//! Implements the paper's evaluation machinery (Section V-A):
//!
//! * [`rho`] — the per-community similarity of eq. (V.1) (the Jaccard index);
//! * [`theta()`] — the suitability `Θ(F, O)` of eq. (V.2), defined for
//!   overlapping structures, used by Figures 2 and 3;
//!
//! plus the standard complementary measures the later literature uses for
//! overlapping covers: the LFK [`overlapping_nmi`], the [`omega_index`],
//! best-match [`average_f1`], and intrinsic diagnostics
//! ([`conductance`], [`cover_quality`]).
//!
//! ```
//! use oca_graph::{Community, Cover};
//! use oca_metrics::theta;
//!
//! let truth = Cover::new(6, vec![Community::from_raw([0, 1, 2]),
//!                                Community::from_raw([3, 4, 5])]);
//! assert_eq!(theta(&truth, &truth), 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod f1;
pub mod modularity;
pub mod nmi;
pub mod omega;
pub mod quality;
pub mod theta;

pub use f1::{average_f1, community_f1};
pub use modularity::{extended_modularity, modularity};
pub use nmi::overlapping_nmi;
pub use omega::omega_index;
pub use quality::{average_internal_degree, conductance, cover_quality, CoverQuality};
pub use theta::{best_match_indices, rho, theta};
