//! Intrinsic (ground-truth-free) community quality diagnostics.

use oca_graph::{Community, Cover, CsrGraph};

/// Conductance of a community: cut edges over the smaller side's volume.
/// Lower is better; 0 means no boundary edges. Returns 1 for degenerate
/// communities (zero volume).
pub fn conductance(graph: &CsrGraph, community: &Community) -> f64 {
    let mut volume = 0usize; // Σ degrees of members
    let mut internal_twice = 0usize;
    for &v in community.members() {
        volume += graph.degree(v);
        internal_twice += graph
            .neighbors(v)
            .iter()
            .filter(|u| community.contains(**u))
            .count();
    }
    let cut = volume - internal_twice;
    let total_volume = 2 * graph.edge_count();
    let denom = volume.min(total_volume - volume);
    if denom == 0 {
        return 1.0;
    }
    cut as f64 / denom as f64
}

/// Average internal degree of a community's members.
pub fn average_internal_degree(graph: &CsrGraph, community: &Community) -> f64 {
    if community.is_empty() {
        return 0.0;
    }
    2.0 * community.internal_edges(graph) as f64 / community.len() as f64
}

/// Summary quality of a cover: mean density, mean conductance, coverage.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverQuality {
    /// Mean internal edge density over communities.
    pub mean_density: f64,
    /// Mean conductance over communities (lower is better).
    pub mean_conductance: f64,
    /// Fraction of nodes in at least one community.
    pub coverage: f64,
    /// Average memberships per covered node.
    pub average_memberships: f64,
}

/// Computes [`CoverQuality`] for a cover on its graph.
pub fn cover_quality(graph: &CsrGraph, cover: &Cover) -> CoverQuality {
    let k = cover.len().max(1) as f64;
    let mean_density = cover
        .communities()
        .iter()
        .map(|c| c.density(graph))
        .sum::<f64>()
        / k;
    let mean_conductance = cover
        .communities()
        .iter()
        .map(|c| conductance(graph, c))
        .sum::<f64>()
        / k;
    CoverQuality {
        mean_density,
        mean_conductance,
        coverage: cover.coverage(),
        average_memberships: cover.average_memberships(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oca_graph::from_edges;

    fn c(ids: &[u32]) -> Community {
        Community::from_raw(ids.iter().copied())
    }

    #[test]
    fn isolated_clique_has_zero_conductance() {
        let g = from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        assert_eq!(conductance(&g, &c(&[0, 1, 2])), 0.0);
    }

    #[test]
    fn split_community_has_high_conductance() {
        let g = from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        // {1, 2} has volume 4, internal 2·1=2, cut 2 → 2/min(4,2)=1.
        assert!((conductance(&g, &c(&[1, 2])) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_conductance() {
        let g = from_edges(3, [(0, 1)]);
        assert_eq!(conductance(&g, &c(&[2])), 1.0, "isolated node");
    }

    #[test]
    fn average_internal_degree_triangle() {
        let g = from_edges(3, [(0, 1), (1, 2), (0, 2)]);
        assert!((average_internal_degree(&g, &c(&[0, 1, 2])) - 2.0).abs() < 1e-12);
        assert_eq!(average_internal_degree(&g, &c(&[])), 0.0);
    }

    #[test]
    fn cover_quality_aggregates() {
        let g = from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        let cover = Cover::new(6, vec![c(&[0, 1, 2]), c(&[3, 4, 5])]);
        let q = cover_quality(&g, &cover);
        assert!((q.mean_density - 1.0).abs() < 1e-12);
        assert!((q.mean_conductance - 0.0).abs() < 1e-12);
        assert!((q.coverage - 1.0).abs() < 1e-12);
        assert!((q.average_memberships - 1.0).abs() < 1e-12);
    }
}
