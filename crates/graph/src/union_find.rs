//! Disjoint-set forest (union–find) with path halving and union by size.
//!
//! Used by connected-components, the clique-percolation baseline, and the
//! LFR generator's repair phase.

/// A disjoint-set forest over `0..len` with path halving and union by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    /// parent[i] is the parent of i; roots are their own parent.
    parent: Vec<u32>,
    /// size[r] is the component size for roots r (stale for non-roots).
    size: Vec<u32>,
    /// Number of disjoint sets.
    sets: usize,
}

impl UnionFind {
    /// Creates `len` singleton sets.
    pub fn new(len: usize) -> Self {
        assert!(
            len <= u32::MAX as usize,
            "UnionFind supports up to 2^32 - 1 elements"
        );
        UnionFind {
            parent: (0..len as u32).collect(),
            size: vec![1; len],
            sets: len,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if there are no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Finds the representative of `x`, halving paths along the way.
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return x as usize;
            }
            let gp = self.parent[p as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
    }

    /// Finds the representative of `x` without mutating (no compression).
    pub fn find_immutable(&self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x as usize
    }

    /// Merges the sets containing `a` and `b`. Returns `true` if they were
    /// previously disjoint.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big as u32;
        self.size[big] += self.size[small];
        self.sets -= 1;
        true
    }

    /// True if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn size_of(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }

    /// Returns, for each element, a dense set label in `0..set_count()`.
    ///
    /// Labels are assigned in order of first appearance, so they are
    /// deterministic for a given union history.
    pub fn labels(&mut self) -> Vec<u32> {
        let n = self.len();
        let mut label_of_root = vec![u32::MAX; n];
        let mut labels = Vec::with_capacity(n);
        let mut next = 0u32;
        for i in 0..n {
            let r = self.find(i);
            if label_of_root[r] == u32::MAX {
                label_of_root[r] = next;
                next += 1;
            }
            labels.push(label_of_root[r]);
        }
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_disjoint() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.set_count(), 4);
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.size_of(2), 1);
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already merged");
        assert_eq!(uf.set_count(), 3);
        assert!(uf.connected(0, 2));
        assert_eq!(uf.size_of(1), 3);
        assert_eq!(uf.size_of(3), 1);
    }

    #[test]
    fn labels_are_dense_and_consistent() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 3);
        uf.union(4, 5);
        let labels = uf.labels();
        assert_eq!(labels[0], labels[3]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[4]);
        let max = *labels.iter().max().unwrap() as usize;
        assert_eq!(max + 1, uf.set_count());
    }

    #[test]
    fn find_immutable_matches_find() {
        let mut uf = UnionFind::new(8);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(5, 6);
        for i in 0..8 {
            assert_eq!(uf.find_immutable(i), { uf.find(i) });
        }
    }

    #[test]
    fn empty_and_len() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.len(), 0);
        assert_eq!(uf.set_count(), 0);
    }

    #[test]
    fn chain_of_unions_single_set() {
        let n = 100;
        let mut uf = UnionFind::new(n);
        for i in 1..n {
            uf.union(i - 1, i);
        }
        assert_eq!(uf.set_count(), 1);
        assert_eq!(uf.size_of(0), n);
    }
}
