//! Induced subgraphs with node-id remapping.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::node::NodeId;

/// An induced subgraph together with the mapping back to the parent graph.
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// The extracted graph, with dense node ids `0..members.len()`.
    pub graph: CsrGraph,
    /// `to_parent[i]` is the parent-graph id of subgraph node `i`.
    pub to_parent: Vec<NodeId>,
}

impl Subgraph {
    /// Extracts the subgraph induced by `members` (duplicates ignored).
    pub fn induced(parent: &CsrGraph, members: &[NodeId]) -> Self {
        let mut to_local = vec![u32::MAX; parent.node_count()];
        let mut to_parent = Vec::with_capacity(members.len());
        for &v in members {
            if to_local[v.index()] == u32::MAX {
                to_local[v.index()] = to_parent.len() as u32;
                to_parent.push(v);
            }
        }
        let mut b = GraphBuilder::new(to_parent.len());
        for (local, &v) in to_parent.iter().enumerate() {
            for &u in parent.neighbors(v) {
                let lu = to_local[u.index()];
                if lu != u32::MAX && (local as u32) < lu {
                    b.add_edge(local as u32, lu);
                }
            }
        }
        Subgraph {
            graph: b.build(),
            to_parent,
        }
    }

    /// Maps a subgraph node id back to the parent graph.
    pub fn parent_id(&self, local: NodeId) -> NodeId {
        self.to_parent[local.index()]
    }

    /// Number of nodes in the subgraph.
    pub fn len(&self) -> usize {
        self.to_parent.len()
    }

    /// True if the subgraph is empty.
    pub fn is_empty(&self) -> bool {
        self.to_parent.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    #[test]
    fn induced_keeps_internal_edges_only() {
        // Square 0-1-2-3 with diagonal 0-2, plus pendant 4 on 0.
        let g = from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (0, 4)]);
        let sub = Subgraph::induced(&g, &[NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.graph.edge_count(), 3, "0-1, 1-2, 0-2");
        assert!(sub.graph.validate().is_ok());
    }

    #[test]
    fn mapping_round_trips() {
        let g = from_edges(4, [(0, 1), (2, 3)]);
        let sub = Subgraph::induced(&g, &[NodeId(3), NodeId(2)]);
        assert_eq!(sub.parent_id(NodeId(0)), NodeId(3));
        assert_eq!(sub.parent_id(NodeId(1)), NodeId(2));
        assert!(sub.graph.has_edge(NodeId(0), NodeId(1)));
    }

    #[test]
    fn duplicates_in_member_list_are_ignored() {
        let g = from_edges(3, [(0, 1), (1, 2)]);
        let sub = Subgraph::induced(&g, &[NodeId(1), NodeId(1), NodeId(2)]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.graph.edge_count(), 1);
    }

    #[test]
    fn empty_member_list() {
        let g = from_edges(3, [(0, 1)]);
        let sub = Subgraph::induced(&g, &[]);
        assert!(sub.is_empty());
        assert_eq!(sub.graph.node_count(), 0);
    }
}
