//! Crash-safe file replacement: write to a temp file, fsync, rename.
//!
//! Every durable artifact this workspace produces (binary covers, `.ocg`
//! graphs) is replaced through [`atomic_write_path`], so a crash — a
//! `SIGKILL` mid-write, a full disk, a power cut between buffered writes —
//! can never leave a *named* file half-written: the target path either
//! still holds its previous complete contents or holds the new complete
//! contents. The sequence is the classic one:
//!
//! 1. write the new contents to a uniquely named temp file **in the same
//!    directory** (rename is only atomic within a filesystem),
//! 2. flush and `fsync` the temp file (data durable before the name moves),
//! 3. `rename(2)` it over the target (atomic replacement),
//! 4. `fsync` the directory so the rename itself survives a power cut
//!    (unix only; elsewhere the rename is still atomic, just not durable
//!    against power loss).
//!
//! A crash before step 3 leaves only a stray `.tmp` file next to the
//! target — debris, not corruption; readers validate checksums anyway and
//! never look at temp names.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Distinguishes temp files of concurrent writers in one process.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// The temp path used for an atomic write of `path`: same directory,
/// process- and call-unique suffix. For writers whose access pattern does
/// not fit [`atomic_write_path`]'s sequential closure (e.g. the external
/// `.ocg` builder seeks back to patch its header), write and fsync this
/// path yourself, then [`commit_temp_path`] it.
pub(crate) fn temp_path_for(path: &Path) -> PathBuf {
    let n = TMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    let file = path.file_name().map(|f| f.to_string_lossy().into_owned());
    let name = format!(
        ".{}.tmp.{}.{n}",
        file.as_deref().unwrap_or("file"),
        std::process::id()
    );
    path.with_file_name(name)
}

/// Atomically replaces the file at `path` with whatever `write` produces.
///
/// `write` receives a buffered writer over the temp file; when it returns
/// `Ok`, the data is flushed, fsynced, and renamed over `path` (see the
/// [module docs](self) for the crash-safety argument). On any error the
/// temp file is removed and `path` is left exactly as it was.
pub fn atomic_write_path<F>(path: &Path, write: F) -> std::io::Result<()>
where
    F: FnOnce(&mut BufWriter<File>) -> std::io::Result<()>,
{
    let tmp = temp_path_for(path);
    let result = File::create(&tmp).and_then(|file| {
        let mut writer = BufWriter::new(file);
        write(&mut writer)
            .and_then(|()| writer.flush())
            .and_then(|()| writer.get_ref().sync_all())
    });
    if let Err(e) = result {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    commit_temp_path(&tmp, path)
}

/// Atomically moves an already-written, already-fsynced temp file (from
/// [`temp_path_for`]) over `path`, fsyncing the directory afterwards. On
/// error the temp file is removed and `path` is untouched.
pub(crate) fn commit_temp_path(tmp: &Path, path: &Path) -> std::io::Result<()> {
    if let Err(e) = std::fs::rename(tmp, path) {
        let _ = std::fs::remove_file(tmp);
        return Err(e);
    }
    sync_parent_dir(path);
    Ok(())
}

/// Best-effort fsync of `path`'s directory, making the rename durable. A
/// failure here (exotic filesystems refuse directory fsync) does not undo
/// an otherwise successful, atomic replacement, so it is not surfaced.
fn sync_parent_dir(path: &Path) {
    #[cfg(unix)]
    {
        let dir = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        if let Ok(handle) = File::open(dir) {
            let _ = handle.sync_all();
        }
    }
    #[cfg(not(unix))]
    {
        let _ = path;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "oca_atomic_test_{}_{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_new_file_and_replaces_existing() {
        let dir = tmpdir();
        let path = dir.join("out.bin");
        atomic_write_path(&path, |w| w.write_all(b"first")).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write_path(&path, |w| w.write_all(b"second, longer")).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_write_leaves_old_contents_and_no_temp_debris() {
        let dir = tmpdir();
        let path = dir.join("out.bin");
        atomic_write_path(&path, |w| w.write_all(b"keep me")).unwrap();
        let err = atomic_write_path(&path, |w| {
            w.write_all(b"half-written garbage")?;
            Err(std::io::Error::other("simulated mid-write failure"))
        })
        .unwrap_err();
        assert!(err.to_string().contains("simulated"));
        assert_eq!(std::fs::read(&path).unwrap(), b"keep me");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|name| name.contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp debris: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_first_write_leaves_no_file_at_all() {
        let dir = tmpdir();
        let path = dir.join("never.bin");
        atomic_write_path(&path, |_| {
            Err::<(), _>(std::io::Error::other("boom")).map(|_| ())
        })
        .unwrap_err();
        assert!(!path.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn relative_path_without_parent_component_works() {
        let dir = tmpdir();
        let old = std::env::current_dir().unwrap();
        // Serialize against other tests that chdir (none today, but cheap).
        std::env::set_current_dir(&dir).unwrap();
        let result = atomic_write_path(Path::new("bare.bin"), |w| w.write_all(b"x"));
        let bytes = std::fs::read(dir.join("bare.bin"));
        std::env::set_current_dir(old).unwrap();
        result.unwrap();
        assert_eq!(bytes.unwrap(), b"x");
        std::fs::remove_dir_all(&dir).ok();
    }
}
