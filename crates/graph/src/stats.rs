//! Summary statistics for graphs (degree distribution, clustering sample).

use crate::csr::CsrGraph;
use crate::node::NodeId;

/// Aggregate statistics of a graph, as reported in the paper's Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of undirected edges.
    pub edges: usize,
    /// Minimum degree.
    pub min_degree: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Average degree (2m/n).
    pub avg_degree: f64,
    /// Number of isolated (degree-0) nodes.
    pub isolated: usize,
}

impl GraphStats {
    /// Computes statistics in a single pass over the degree array.
    pub fn compute(graph: &CsrGraph) -> Self {
        let n = graph.node_count();
        let mut min_degree = usize::MAX;
        let mut max_degree = 0usize;
        let mut isolated = 0usize;
        for v in graph.nodes() {
            let d = graph.degree(v);
            min_degree = min_degree.min(d);
            max_degree = max_degree.max(d);
            if d == 0 {
                isolated += 1;
            }
        }
        if n == 0 {
            min_degree = 0;
        }
        GraphStats {
            nodes: n,
            edges: graph.edge_count(),
            min_degree,
            max_degree,
            avg_degree: graph.average_degree(),
            isolated,
        }
    }
}

/// Degree histogram: `hist[d]` = number of nodes with degree `d`.
pub fn degree_histogram(graph: &CsrGraph) -> Vec<usize> {
    let mut hist = vec![0usize; graph.max_degree() + 1];
    for v in graph.nodes() {
        hist[graph.degree(v)] += 1;
    }
    hist
}

/// Local clustering coefficient of one node: fraction of neighbor pairs
/// that are themselves connected. 0 for degree < 2.
pub fn local_clustering(graph: &CsrGraph, v: NodeId) -> f64 {
    let neigh = graph.neighbors(v);
    let d = neigh.len();
    if d < 2 {
        return 0.0;
    }
    let mut links = 0usize;
    for (i, &a) in neigh.iter().enumerate() {
        for &b in &neigh[i + 1..] {
            if graph.has_edge(a, b) {
                links += 1;
            }
        }
    }
    2.0 * links as f64 / (d * (d - 1)) as f64
}

/// Average local clustering coefficient over all nodes (exact; `O(Σ d²)`).
pub fn average_clustering(graph: &CsrGraph) -> f64 {
    if graph.is_empty() {
        return 0.0;
    }
    let sum: f64 = graph.nodes().map(|v| local_clustering(graph, v)).sum();
    sum / graph.node_count() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    #[test]
    fn stats_on_triangle_with_isolate() {
        let g = from_edges(4, [(0, 1), (1, 2), (0, 2)]);
        let s = GraphStats::compute(&g);
        assert_eq!(s.nodes, 4);
        assert_eq!(s.edges, 3);
        assert_eq!(s.min_degree, 0);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.isolated, 1);
        assert!((s.avg_degree - 1.5).abs() < 1e-12);
    }

    #[test]
    fn stats_on_empty_graph() {
        let g = crate::csr::CsrGraph::empty(0);
        let s = GraphStats::compute(&g);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.min_degree, 0);
        assert_eq!(average_clustering(&g), 0.0);
    }

    #[test]
    fn histogram_sums_to_node_count() {
        let g = from_edges(5, [(0, 1), (1, 2), (2, 3)]);
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), 5);
        assert_eq!(h[0], 1, "node 4 isolated");
        assert_eq!(h[1], 2, "nodes 0 and 3");
        assert_eq!(h[2], 2, "nodes 1 and 2");
    }

    #[test]
    fn clustering_triangle_vs_path() {
        let tri = from_edges(3, [(0, 1), (1, 2), (0, 2)]);
        assert!((local_clustering(&tri, NodeId(0)) - 1.0).abs() < 1e-12);
        assert!((average_clustering(&tri) - 1.0).abs() < 1e-12);

        let path = from_edges(3, [(0, 1), (1, 2)]);
        assert_eq!(local_clustering(&path, NodeId(1)), 0.0);
        assert_eq!(local_clustering(&path, NodeId(0)), 0.0, "degree 1");
    }
}
