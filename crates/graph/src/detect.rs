//! The common detection API: every community-detection algorithm in the
//! workspace is driven through the object-safe [`CommunityDetector`] trait.
//!
//! The paper's evaluation protocol (Section V) runs OCA and each baseline
//! on identical graphs with identical postprocessing. This module is the
//! code-level counterpart of that protocol: one trait with a uniform
//! signature, a [`DetectContext`] carrying the run's RNG seed, a
//! cooperative [`CancelToken`] and an optional progress callback, a
//! [`Detection`] result with uniform telemetry, and a typed [`DetectError`]
//! hierarchy replacing `panic!`-based input validation.
//!
//! Algorithm crates implement the trait on thin config newtypes (e.g.
//! `OcaDetector` in `oca`, `LfkDetector` in `oca-baselines`); the `oca-api`
//! crate aggregates them behind a string-keyed registry so new backends are
//! a drop-in registration rather than a fan-out edit across call sites.
//!
//! # Example: implementing a detector
//!
//! ```
//! use oca_graph::detect::{CommunityDetector, DetectContext, DetectError, Detection};
//! use oca_graph::{from_edges, Community, Cover, CsrGraph};
//! use std::time::Instant;
//!
//! /// A toy detector: every connected pair of nodes is a community.
//! #[derive(Debug)]
//! struct EdgeDetector;
//!
//! impl CommunityDetector for EdgeDetector {
//!     fn name(&self) -> &'static str {
//!         "edges"
//!     }
//!
//!     fn detect(
//!         &self,
//!         graph: &CsrGraph,
//!         ctx: &mut DetectContext,
//!     ) -> Result<Detection, DetectError> {
//!         let start = Instant::now();
//!         let mut communities = Vec::new();
//!         for u in graph.nodes() {
//!             ctx.tick("edges", u.index(), Some(graph.node_count()));
//!             for &v in graph.neighbors(u) {
//!                 if u < v {
//!                     communities.push(Community::new(vec![u, v]));
//!                 }
//!             }
//!         }
//!         let cover = Cover::new(graph.node_count(), communities);
//!         Ok(Detection::new(cover, start.elapsed()))
//!     }
//! }
//!
//! let g = from_edges(3, [(0, 1), (1, 2)]);
//! let detection = EdgeDetector
//!     .detect(&g, &mut DetectContext::new(42))
//!     .unwrap();
//! assert_eq!(detection.cover.len(), 2);
//! assert!(detection.complete);
//! ```

use crate::community::Cover;
use crate::csr::CsrGraph;
use crate::error::GraphError;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The shared state behind a [`CancelToken`]: the flag itself, an optional
/// wall-clock deadline, and an optional parent token whose cancellation is
/// inherited.
#[derive(Debug, Default)]
struct CancelInner {
    flag: AtomicBool,
    deadline: Option<Instant>,
    parent: Option<CancelToken>,
}

/// A cooperative cancellation token shared between a detector run and the
/// code controlling it (another thread, a signal handler, a progress
/// callback). Cloning is cheap; all clones observe the same flag.
///
/// Beyond the plain flag, a token can carry a wall-clock **deadline**
/// ([`CancelToken::with_deadline`]) after which it reports cancelled on its
/// own, and it can be **linked** to a parent ([`CancelToken::child`]) so
/// that cancelling the parent cancels the child but not vice versa. A
/// serving layer uses both together: one parent token for process shutdown,
/// one short-lived child per request carrying that request's deadline —
/// a single `is_cancelled` poll inside the hot loop observes either.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

impl CancelToken {
    /// A fresh, not-yet-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A fresh token that reports cancelled once `deadline` passes, even if
    /// [`CancelToken::cancel`] is never called.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            inner: Arc::new(CancelInner {
                deadline: Some(deadline),
                ..Default::default()
            }),
        }
    }

    /// A child token: cancelled whenever `self` is, but cancelling the
    /// child leaves `self` untouched.
    pub fn child(&self) -> Self {
        CancelToken {
            inner: Arc::new(CancelInner {
                parent: Some(self.clone()),
                ..Default::default()
            }),
        }
    }

    /// A child token with its own deadline: cancelled when the parent is
    /// cancelled *or* `deadline` passes. [`CancelToken::deadline_exceeded`]
    /// distinguishes the two after the fact.
    pub fn child_with_deadline(&self, deadline: Instant) -> Self {
        CancelToken {
            inner: Arc::new(CancelInner {
                deadline: Some(deadline),
                parent: Some(self.clone()),
                ..Default::default()
            }),
        }
    }

    /// Requests cancellation. Detectors poll the flag at their outer loops
    /// (per ascent, per clique, per sweep) and return
    /// [`DetectError::Cancelled`] with whatever partial result they hold.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Relaxed);
    }

    /// True once [`CancelToken::cancel`] has been called on any clone, the
    /// deadline (if any) has passed, or a linked parent is cancelled.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.flag.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                // Latch, so later polls skip the clock read.
                self.inner.flag.store(true, Ordering::Relaxed);
                return true;
            }
        }
        match &self.inner.parent {
            Some(parent) => parent.is_cancelled(),
            None => false,
        }
    }

    /// True when this token's *own* deadline has passed — regardless of
    /// whether the flag was also set. Lets a caller that handed out a
    /// deadline child distinguish "timed out" from "shut down".
    pub fn deadline_exceeded(&self) -> bool {
        self.inner
            .deadline
            .is_some_and(|deadline| Instant::now() >= deadline)
    }
}

/// One progress event emitted by a running detector.
///
/// `stage` names the detector's current phase (e.g. `"ascent"`,
/// `"cliques"`, `"sweep"`); `done` counts completed work items in that
/// stage and `total` bounds them when the bound is known upfront.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Progress {
    /// The detector phase this event belongs to.
    pub stage: &'static str,
    /// Work items completed so far in this stage.
    pub done: usize,
    /// Upper bound on `done`, when known.
    pub total: Option<usize>,
}

type ProgressFn = Box<dyn Fn(Progress) + Send + Sync>;

/// Per-run context handed to [`CommunityDetector::detect`]: the RNG seed,
/// a cancellation token and an optional progress callback.
///
/// The context owns the run's determinism contract: detectors must derive
/// all randomness from [`DetectContext::seed`] so two runs with the same
/// seed on the same graph produce the same cover.
pub struct DetectContext {
    seed: u64,
    cancel: CancelToken,
    progress: Option<ProgressFn>,
}

impl fmt::Debug for DetectContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DetectContext")
            .field("seed", &self.seed)
            .field("cancelled", &self.cancel.is_cancelled())
            .field("has_progress", &self.progress.is_some())
            .finish()
    }
}

impl DetectContext {
    /// A context with the given RNG seed, no cancellation and no progress
    /// callback.
    pub fn new(seed: u64) -> Self {
        DetectContext {
            seed,
            cancel: CancelToken::new(),
            progress: None,
        }
    }

    /// Attaches an externally controlled cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Attaches a progress callback, invoked synchronously from the
    /// detector (possibly from worker threads). Keep it cheap.
    pub fn with_progress<F>(mut self, callback: F) -> Self
    where
        F: Fn(Progress) + Send + Sync + 'static,
    {
        self.progress = Some(Box::new(callback));
        self
    }

    /// The RNG seed every detector must derive its randomness from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A clone of the run's cancellation token (e.g. to cancel from
    /// another thread).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// True once cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// Emits one progress event (no-op without a callback).
    pub fn tick(&self, stage: &'static str, done: usize, total: Option<usize>) {
        if let Some(callback) = &self.progress {
            callback(Progress { stage, done, total });
        }
    }
}

impl Default for DetectContext {
    /// Seed 0, no cancellation, no progress.
    fn default() -> Self {
        DetectContext::new(0)
    }
}

/// The uniform result of a detector run: the cover plus telemetry every
/// algorithm reports the same way.
#[derive(Debug, Clone)]
pub struct Detection {
    /// The cover produced (before any shared postprocessing).
    pub cover: Cover,
    /// Wall-clock duration of the algorithm proper.
    pub elapsed: Duration,
    /// False when the algorithm hit an internal cap (e.g. CFinder's clique
    /// budget) and the cover is partial.
    pub complete: bool,
    /// Outer-loop iterations: seeds tried (OCA, LFK), sweeps (LPA),
    /// cliques enumerated (CFinder).
    pub iterations: usize,
    /// Algorithm-specific telemetry as key–value pairs, in a stable order
    /// (e.g. OCA reports `c` and `lambda_min`).
    pub stats: Vec<(&'static str, String)>,
}

impl Detection {
    /// A complete detection with no extra telemetry.
    pub fn new(cover: Cover, elapsed: Duration) -> Self {
        Detection {
            cover,
            elapsed,
            complete: true,
            iterations: 0,
            stats: Vec::new(),
        }
    }
}

/// Errors produced by detector construction, validation and runs.
///
/// Together with [`GraphError`] this forms the workspace's typed error
/// hierarchy: input validation surfaces as values rather than panics.
#[derive(Debug)]
pub enum DetectError {
    /// The underlying graph was invalid or could not be built.
    Graph(GraphError),
    /// A detector configuration failed validation.
    InvalidConfig {
        /// Display name of the algorithm whose config is invalid.
        algorithm: &'static str,
        /// What is wrong with it.
        message: String,
    },
    /// A registry lookup used a name no detector is registered under.
    UnknownAlgorithm {
        /// The name that failed to resolve.
        name: String,
        /// Names the registry does know.
        known: Vec<&'static str>,
    },
    /// A detector constructor received an option key it does not accept.
    UnknownOption {
        /// The algorithm whose constructor rejected the key.
        algorithm: &'static str,
        /// The offending key.
        key: String,
        /// Keys the constructor accepts.
        accepted: Vec<&'static str>,
    },
    /// A detector option had a value that could not be parsed.
    InvalidOption {
        /// The option key.
        key: String,
        /// The unparsable value.
        value: String,
        /// What was expected.
        message: String,
    },
    /// The run was cancelled via [`CancelToken`]; `partial` holds whatever
    /// the detector had produced when it noticed.
    Cancelled {
        /// The partial result at the point of cancellation.
        partial: Box<Detection>,
    },
    /// A checkpoint file could not be used to resume the run (damaged,
    /// wrong version, or bound to a different config/graph).
    Checkpoint {
        /// The checkpoint file.
        path: std::path::PathBuf,
        /// Why it was refused.
        source: crate::ckpt::CkptError,
    },
}

impl DetectError {
    /// Shorthand for [`DetectError::Cancelled`].
    pub fn cancelled(partial: Detection) -> Self {
        DetectError::Cancelled {
            partial: Box::new(partial),
        }
    }
}

impl fmt::Display for DetectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectError::Graph(e) => write!(f, "graph error: {e}"),
            DetectError::InvalidConfig { algorithm, message } => {
                write!(f, "invalid {algorithm} configuration: {message}")
            }
            DetectError::UnknownAlgorithm { name, known } => {
                write!(f, "unknown algorithm {name:?}; known: {}", known.join(", "))
            }
            DetectError::UnknownOption {
                algorithm,
                key,
                accepted,
            } => {
                if accepted.is_empty() {
                    write!(f, "unknown option --{key} for {algorithm} (none accepted)")
                } else {
                    write!(
                        f,
                        "unknown option --{key} for {algorithm}; accepted: {}",
                        accepted
                            .iter()
                            .map(|k| format!("--{k}"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                }
            }
            DetectError::InvalidOption {
                key,
                value,
                message,
            } => {
                write!(f, "invalid value {value:?} for --{key}: {message}")
            }
            DetectError::Cancelled { partial } => write!(
                f,
                "run cancelled after {:.3}s with {} partial communities",
                partial.elapsed.as_secs_f64(),
                partial.cover.len()
            ),
            DetectError::Checkpoint { path, source } => {
                write!(f, "checkpoint {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for DetectError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DetectError::Graph(e) => Some(e),
            DetectError::Checkpoint { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<GraphError> for DetectError {
    fn from(e: GraphError) -> Self {
        DetectError::Graph(e)
    }
}

/// The common interface of every community-detection algorithm.
///
/// The trait is object-safe: drivers hold `Box<dyn CommunityDetector>` and
/// treat OCA and every baseline identically — the shape of the paper's
/// evaluation protocol. Implementations are thin newtypes over the
/// algorithm's config struct; construction validates the config, so
/// `detect` itself fails only on graph errors or cancellation. The
/// `Debug + Send + Sync` supertraits keep boxed detectors loggable and
/// movable across driver threads.
pub trait CommunityDetector: fmt::Debug + Send + Sync {
    /// Display name, unique per algorithm variant (used as the row label
    /// in experiment tables, so e.g. the faithful CFinder path must not
    /// collide with the triangle path).
    fn name(&self) -> &'static str;

    /// Runs the algorithm on `graph`.
    ///
    /// Contract:
    /// * all randomness derives from [`DetectContext::seed`] — equal seeds
    ///   on equal graphs give equal covers. Parallel implementations must
    ///   arrange their scheduling (e.g. OCA's ticket-ordered reduction) so
    ///   worker counts and thread interleavings never change the result;
    /// * the cancellation token is polled at least once per outer
    ///   iteration and honoured with [`DetectError::Cancelled`] carrying
    ///   the partial result;
    /// * progress is reported through [`DetectContext::tick`] with `done`
    ///   values that are monotone non-decreasing per stage (completed
    ///   work only — never a count captured before the work ran).
    fn detect(&self, graph: &CsrGraph, ctx: &mut DetectContext) -> Result<Detection, DetectError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled());
        assert!(b.is_cancelled());
    }

    #[test]
    fn context_carries_seed_and_token() {
        let token = CancelToken::new();
        let ctx = DetectContext::new(7).with_cancel(token.clone());
        assert_eq!(ctx.seed(), 7);
        assert!(!ctx.is_cancelled());
        token.cancel();
        assert!(ctx.is_cancelled());
        assert!(ctx.cancel_token().is_cancelled());
    }

    #[test]
    fn ticks_reach_the_progress_callback() {
        let count = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&count);
        let ctx = DetectContext::new(0).with_progress(move |p: Progress| {
            assert_eq!(p.stage, "stage");
            assert_eq!(p.total, Some(10));
            seen.fetch_add(1, Ordering::Relaxed);
        });
        for i in 0..3 {
            ctx.tick("stage", i, Some(10));
        }
        assert_eq!(count.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn ticks_without_callback_are_noops() {
        DetectContext::new(0).tick("stage", 1, None);
    }

    #[test]
    fn error_messages_name_the_problem() {
        let e = DetectError::UnknownAlgorithm {
            name: "nope".into(),
            known: vec!["oca", "lfk"],
        };
        let msg = e.to_string();
        assert!(msg.contains("nope") && msg.contains("oca") && msg.contains("lfk"));

        let e = DetectError::UnknownOption {
            algorithm: "OCA",
            key: "thread".into(),
            accepted: vec!["threads"],
        };
        assert!(e.to_string().contains("--thread") && e.to_string().contains("--threads"));

        let e = DetectError::InvalidConfig {
            algorithm: "CFinder",
            message: "k must be at least 2".into(),
        };
        assert!(e.to_string().contains("CFinder"));

        let partial = Detection::new(Cover::empty(0), Duration::from_millis(10));
        let e = DetectError::cancelled(partial);
        assert!(e.to_string().contains("cancelled"));
    }

    #[test]
    fn graph_errors_convert_and_chain() {
        use std::error::Error;
        let e = DetectError::from(GraphError::EmptyGraph);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("graph error"));
    }

    #[test]
    fn context_debug_is_informative() {
        let ctx = DetectContext::default().with_progress(|_| {});
        let dbg = format!("{ctx:?}");
        assert!(dbg.contains("seed") && dbg.contains("has_progress"));
    }
}
