//! The `.ocg` on-disk graph format: a versioned, checksummed CSR image
//! that can be memory-mapped and used as a [`CsrGraph`] without parsing.
//!
//! ## Layout (all integers little-endian)
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"OCAGRAPH"
//!      8     4  version (currently 1)
//!     12     4  flags   (bit 0 VALIDATED, bit 1 RELABELED)
//!     16     8  node_count
//!     24     8  directed_len   (neighbor entries = 2 × edge_count)
//!     32     8  self_loops     (dropped during ingestion)
//!     40     8  duplicates     (dropped during ingestion)
//!     48     8  checksum       (FNV-1a over every byte after the header)
//!     56     8  reserved (zero)
//!     64     …  offsets    (node_count + 1) × u32
//!      …     …  neighbors  directed_len × u32
//!      …     …  new_to_old node_count × u32   (only when RELABELED)
//! ```
//!
//! The header is exactly 64 bytes so every array section starts 4-byte
//! aligned in a page-aligned mapping, which is what lets
//! the `storage` slabs hand out `&[u32]` views directly over the file.
//!
//! ## Cost model
//!
//! Writers run the full O(n + m) [`CsrGraph::validate`] sweep (or
//! construct the arrays in a way that guarantees the invariants — see
//! [`crate::ocg_build`]) and set the VALIDATED flag, so
//! [`open_ocg_path`] only does O(1) structural checks: magic, version,
//! section lengths against the file size, first/last offset. Checksums
//! are *not* recomputed on open — that would force reading the whole
//! file, defeating lazy mapping. [`verify_ocg_path`] is the explicit
//! O(n + m) audit: it re-hashes the payload and re-runs every CSR
//! invariant, for use after copying files between machines.

use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};
use crate::node::NodeId;
use crate::relabel::Relabeling;
use crate::storage::{MappedFile, NodeSlab, U32Slab};
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

/// Magic bytes at offset 0.
pub const OCG_MAGIC: [u8; 8] = *b"OCAGRAPH";
/// Current format version.
pub const OCG_VERSION: u32 = 1;
/// Header size in bytes; array sections start here.
pub const OCG_HEADER_LEN: usize = 64;
/// Flag: the writer ran the full CSR invariant sweep.
pub const OCG_FLAG_VALIDATED: u32 = 1;
/// Flag: nodes are degree-ordered and a `new_to_old` section is present.
pub const OCG_FLAG_RELABELED: u32 = 2;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a hasher over the payload bytes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv1a(u64);

impl Fnv1a {
    pub(crate) fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    pub(crate) fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// Parsed `.ocg` header, exposed for `graph info`/`graph verify`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OcgInfo {
    /// Format version.
    pub version: u32,
    /// Number of nodes.
    pub node_count: usize,
    /// Number of undirected edges.
    pub edge_count: usize,
    /// Self-loops dropped when the file was built.
    pub self_loops: u64,
    /// Duplicate edges dropped when the file was built.
    pub duplicates: u64,
    /// True when the writer ran the full invariant sweep.
    pub validated: bool,
    /// True when nodes are degree-ordered (a `new_to_old` map is stored).
    pub relabeled: bool,
    /// FNV-1a checksum of the payload, as recorded in the header.
    pub checksum: u64,
    /// Total file size in bytes.
    pub byte_len: u64,
}

/// A graph opened from a `.ocg` file: the mmap-backed [`CsrGraph`], its
/// header metadata, and (for relabeled files) the stored id map.
#[derive(Debug)]
pub struct OcgGraph {
    /// The graph, backed by the mapped file.
    pub graph: CsrGraph,
    /// Header metadata.
    pub info: OcgInfo,
    /// The stored `new_to_old` section, if the file is relabeled.
    new_to_old: Option<NodeSlab>,
}

impl OcgGraph {
    /// Materializes the stored id map as a [`Relabeling`] (compact ids →
    /// the edge list's original ids). `None` for files built without
    /// relabeling. O(n) per call; callers keep the result.
    pub fn relabeling(&self) -> Option<Relabeling> {
        self.new_to_old
            .as_ref()
            .map(|slab| Relabeling::from_new_to_old(slab.as_slice().to_vec()))
    }
}

fn invalid(message: impl Into<String>) -> GraphError {
    GraphError::InvalidFormat {
        message: message.into(),
    }
}

struct RawHeader {
    version: u32,
    flags: u32,
    node_count: u64,
    directed_len: u64,
    self_loops: u64,
    duplicates: u64,
    checksum: u64,
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap())
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap())
}

fn parse_header(bytes: &[u8]) -> Result<RawHeader> {
    if bytes.len() < OCG_HEADER_LEN {
        return Err(invalid(format!(
            "file is {} bytes, shorter than the {OCG_HEADER_LEN}-byte header",
            bytes.len()
        )));
    }
    if bytes[..8] != OCG_MAGIC {
        return Err(invalid("bad magic (not an .ocg file)"));
    }
    let version = read_u32(bytes, 8);
    if version != OCG_VERSION {
        return Err(invalid(format!(
            "unsupported version {version} (this build reads version {OCG_VERSION})"
        )));
    }
    Ok(RawHeader {
        version,
        flags: read_u32(bytes, 12),
        node_count: read_u64(bytes, 16),
        directed_len: read_u64(bytes, 24),
        self_loops: read_u64(bytes, 32),
        duplicates: read_u64(bytes, 40),
        checksum: read_u64(bytes, 48),
    })
}

/// Section geometry derived from a parsed header: element counts and byte
/// offsets of each array, plus the expected total file size.
struct Sections {
    n: usize,
    directed: usize,
    offsets_start: usize,
    neighbors_start: usize,
    relabel_start: usize,
    expected_len: u64,
    relabeled: bool,
}

fn sections(h: &RawHeader) -> Result<Sections> {
    if h.node_count > u32::MAX as u64 {
        return Err(invalid(format!(
            "node count {} exceeds the u32 id space",
            h.node_count
        )));
    }
    if h.directed_len > u32::MAX as u64 {
        return Err(invalid(format!(
            "directed adjacency length {} exceeds the u32 offset space",
            h.directed_len
        )));
    }
    let n = h.node_count as usize;
    let directed = h.directed_len as usize;
    if h.directed_len % 2 != 0 {
        return Err(invalid("directed adjacency length must be even"));
    }
    let relabeled = h.flags & OCG_FLAG_RELABELED != 0;
    let offsets_start = OCG_HEADER_LEN;
    let neighbors_start = offsets_start + 4 * (n + 1);
    let relabel_start = neighbors_start + 4 * directed;
    let expected_len = relabel_start as u64 + if relabeled { 4 * n as u64 } else { 0 };
    Ok(Sections {
        n,
        directed,
        offsets_start,
        neighbors_start,
        relabel_start,
        expected_len,
        relabeled,
    })
}

fn open_mapped(path: &Path) -> Result<(Arc<MappedFile>, RawHeader, Sections)> {
    if cfg!(target_endian = "big") {
        return Err(invalid(
            ".ocg files are little-endian and cannot be mapped on a big-endian target",
        ));
    }
    let file = Arc::new(MappedFile::open(path)?);
    let header = parse_header(file.bytes())?;
    let geo = sections(&header)?;
    if file.byte_len() as u64 != geo.expected_len {
        return Err(invalid(format!(
            "file is {} bytes but the header implies {}",
            file.byte_len(),
            geo.expected_len
        )));
    }
    Ok((file, header, geo))
}

/// Opens a `.ocg` file as a memory-mapped graph.
///
/// This performs only O(1) structural checks (magic, version, section
/// geometry, first/last offset) and trusts the VALIDATED flag for the
/// O(n + m) invariants; use [`verify_ocg_path`] for a full audit.
pub fn open_ocg_path<P: AsRef<Path>>(path: P) -> Result<OcgGraph> {
    let path = path.as_ref();
    open_ocg_inner(path).map_err(|e| e.with_path(path))
}

fn open_ocg_inner(path: &Path) -> Result<OcgGraph> {
    let (file, header, geo) = open_mapped(path)?;
    graph_from_mapped(file, header, geo)
}

/// Assembles the [`OcgGraph`] over an already-opened mapping, so callers
/// that need both the raw bytes and the graph (the verifier) map the file
/// once instead of twice — a second mapping would double the resident-set
/// accounting of every touched page.
fn graph_from_mapped(file: Arc<MappedFile>, header: RawHeader, geo: Sections) -> Result<OcgGraph> {
    if header.flags & OCG_FLAG_VALIDATED == 0 {
        return Err(invalid(
            "file is not marked validated; rebuild it with a current writer",
        ));
    }
    let offsets = U32Slab::Mapped {
        file: Arc::clone(&file),
        byte_start: geo.offsets_start,
        len: geo.n + 1,
    };
    {
        let off = offsets.as_slice();
        if off[0] != 0 {
            return Err(invalid("offsets[0] must be 0"));
        }
        if *off.last().unwrap() as usize != geo.directed {
            return Err(invalid("last offset disagrees with the header's length"));
        }
    }
    let neighbors = NodeSlab::Mapped {
        file: Arc::clone(&file),
        byte_start: geo.neighbors_start,
        len: geo.directed,
    };
    let new_to_old = geo.relabeled.then(|| NodeSlab::Mapped {
        file: Arc::clone(&file),
        byte_start: geo.relabel_start,
        len: geo.n,
    });
    let info = OcgInfo {
        version: header.version,
        node_count: geo.n,
        edge_count: geo.directed / 2,
        self_loops: header.self_loops,
        duplicates: header.duplicates,
        validated: true,
        relabeled: geo.relabeled,
        checksum: header.checksum,
        byte_len: file.byte_len() as u64,
    };
    Ok(OcgGraph {
        graph: CsrGraph::from_slabs(offsets, neighbors),
        info,
        new_to_old,
    })
}

/// Fully audits a `.ocg` file: recomputes the payload checksum against the
/// header and re-runs every CSR invariant (plus a permutation check on the
/// id map). O(n + m). Returns the header metadata on success.
pub fn verify_ocg_path<P: AsRef<Path>>(path: P) -> Result<OcgInfo> {
    let path = path.as_ref();
    verify_ocg_inner(path).map_err(|e| e.with_path(path))
}

fn verify_ocg_inner(path: &Path) -> Result<OcgInfo> {
    let (file, header, geo) = open_mapped(path)?;
    let mut fnv = Fnv1a::new();
    fnv.update(&file.bytes()[OCG_HEADER_LEN..]);
    if fnv.finish() != header.checksum {
        return Err(invalid(format!(
            "checksum mismatch: header records {:#018x}, payload hashes to {:#018x}",
            header.checksum,
            fnv.finish()
        )));
    }
    let (relabeled, relabel_start, n) = (geo.relabeled, geo.relabel_start, geo.n);
    let opened = graph_from_mapped(Arc::clone(&file), header, geo)?;
    opened
        .graph
        .validate()
        .map_err(|message| invalid(format!("CSR invariant violated: {message}")))?;
    if relabeled {
        let ids = file.node_ids(relabel_start, n);
        let mut seen = vec![false; n];
        for &v in ids {
            if v.index() >= n || seen[v.index()] {
                return Err(invalid("new_to_old section is not a permutation"));
            }
            seen[v.index()] = true;
        }
    }
    Ok(opened.info)
}

/// Reads only the header of a `.ocg` file (for `graph info`). O(1).
pub fn read_ocg_info<P: AsRef<Path>>(path: P) -> Result<OcgInfo> {
    let path = path.as_ref();
    open_ocg_inner(path)
        .map(|g| g.info)
        .map_err(|e| e.with_path(path))
}

/// Packs `words` into little-endian bytes, updating `fnv` and writing to
/// `w` through a reusable buffer (avoids one syscall-sized write per word).
pub(crate) fn write_words<W: Write>(
    w: &mut W,
    fnv: &mut Fnv1a,
    words: impl Iterator<Item = u32>,
) -> std::io::Result<()> {
    let mut buf = [0u8; 4096];
    let mut used = 0usize;
    for word in words {
        buf[used..used + 4].copy_from_slice(&word.to_le_bytes());
        used += 4;
        if used == buf.len() {
            fnv.update(&buf);
            w.write_all(&buf)?;
            used = 0;
        }
    }
    if used > 0 {
        fnv.update(&buf[..used]);
        w.write_all(&buf[..used])?;
    }
    Ok(())
}

pub(crate) fn encode_header(
    flags: u32,
    node_count: u64,
    directed_len: u64,
    self_loops: u64,
    duplicates: u64,
    checksum: u64,
) -> [u8; OCG_HEADER_LEN] {
    let mut h = [0u8; OCG_HEADER_LEN];
    h[..8].copy_from_slice(&OCG_MAGIC);
    h[8..12].copy_from_slice(&OCG_VERSION.to_le_bytes());
    h[12..16].copy_from_slice(&flags.to_le_bytes());
    h[16..24].copy_from_slice(&node_count.to_le_bytes());
    h[24..32].copy_from_slice(&directed_len.to_le_bytes());
    h[32..40].copy_from_slice(&self_loops.to_le_bytes());
    h[40..48].copy_from_slice(&duplicates.to_le_bytes());
    h[48..56].copy_from_slice(&checksum.to_le_bytes());
    h
}

/// The checksum [`write_ocg_path`] would record for this graph (and id
/// map): FNV-1a over the serialized payload, computed without writing
/// anything. Lets benchmarks compare an in-RAM build against an on-disk
/// file without serializing the former.
pub fn payload_checksum(graph: &CsrGraph, relabeling: Option<&Relabeling>) -> u64 {
    let mut fnv = Fnv1a::new();
    let mut buf = [0u8; 4096];
    let mut used = 0usize;
    {
        let mut feed = |fnv: &mut Fnv1a, word: u32| {
            buf[used..used + 4].copy_from_slice(&word.to_le_bytes());
            used += 4;
            if used == buf.len() {
                fnv.update(&buf);
                used = 0;
            }
        };
        for &o in graph.offsets_slice() {
            feed(&mut fnv, o);
        }
        for &v in graph.neighbors_slice() {
            feed(&mut fnv, v.raw());
        }
        if let Some(r) = relabeling {
            for i in 0..r.len() as u32 {
                feed(&mut fnv, r.to_original(NodeId(i)).raw());
            }
        }
    }
    if used > 0 {
        fnv.update(&buf[..used]);
    }
    fnv.finish()
}

/// Writes an in-RAM graph as a `.ocg` file.
///
/// Runs the full [`CsrGraph::validate`] sweep first (the format promises
/// VALIDATED means exactly that), so this is O(n + m). `relabeling`, when
/// given, is stored as the `new_to_old` section and must describe this
/// graph (compact ids → original edge-list ids). `report` records the
/// ingestion drop counts in the header.
pub fn write_ocg_path<P: AsRef<Path>>(
    graph: &CsrGraph,
    relabeling: Option<&Relabeling>,
    report: crate::builder::BuildReport,
    path: P,
) -> Result<()> {
    let path = path.as_ref();
    write_ocg_inner(graph, relabeling, report, path).map_err(|e| e.with_path(path))
}

fn write_ocg_inner(
    graph: &CsrGraph,
    relabeling: Option<&Relabeling>,
    report: crate::builder::BuildReport,
    path: &Path,
) -> Result<()> {
    graph
        .validate()
        .map_err(|message| invalid(format!("refusing to write an invalid graph: {message}")))?;
    if let Some(r) = relabeling {
        if r.len() != graph.node_count() {
            return Err(invalid(format!(
                "relabeling covers {} nodes but the graph has {}",
                r.len(),
                graph.node_count()
            )));
        }
    }
    let mut flags = OCG_FLAG_VALIDATED;
    if relabeling.is_some() {
        flags |= OCG_FLAG_RELABELED;
    }
    let checksum = payload_checksum(graph, relabeling);
    let header = encode_header(
        flags,
        graph.node_count() as u64,
        graph.neighbors_slice().len() as u64,
        report.self_loops,
        report.duplicates,
        checksum,
    );
    // Crash-safe replacement: a SIGKILL (or full disk) mid-write leaves
    // the previous file — if any — untouched; the new name only appears
    // once its payload is complete and fsynced.
    crate::atomic::atomic_write_path(path, |w| {
        w.write_all(&header)?;
        let mut fnv = Fnv1a::new();
        write_words(w, &mut fnv, graph.offsets_slice().iter().copied())?;
        write_words(w, &mut fnv, graph.neighbors_slice().iter().map(|v| v.raw()))?;
        if let Some(r) = relabeling {
            write_words(
                w,
                &mut fnv,
                (0..r.len() as u32).map(|i| r.to_original(NodeId(i)).raw()),
            )?;
        }
        debug_assert_eq!(fnv.finish(), checksum);
        Ok(())
    })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{BuildReport, GraphBuilder};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("oca_ocg_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample() -> (CsrGraph, Relabeling, BuildReport) {
        let mut b = GraphBuilder::new(6);
        b.extend_edges([(0, 1), (1, 2), (0, 2), (2, 3), (3, 3), (0, 1), (4, 0)]);
        let (report, g, r) = {
            let (plain, report) = b.try_build_report().unwrap();
            let r = Relabeling::degree_descending(&plain);
            (report, plain.relabeled(&r), r)
        };
        (g, r, report)
    }

    #[test]
    fn round_trip_preserves_graph_and_metadata() {
        let (g, r, report) = sample();
        let path = tmp("roundtrip.ocg");
        write_ocg_path(&g, Some(&r), report, &path).unwrap();

        let opened = open_ocg_path(&path).unwrap();
        assert!(opened.graph.is_mapped());
        assert_eq!(opened.graph, g);
        assert_eq!(opened.relabeling().unwrap(), r);
        assert_eq!(opened.info.node_count, 6);
        assert_eq!(opened.info.edge_count, g.edge_count());
        assert_eq!(opened.info.self_loops, 1);
        assert_eq!(opened.info.duplicates, 1);
        assert!(opened.info.relabeled);
        assert!(opened.info.validated);

        let info = verify_ocg_path(&path).unwrap();
        assert_eq!(info, opened.info);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn round_trip_without_relabeling() {
        let g = crate::builder::from_edges(4, [(0, 1), (2, 3)]);
        let path = tmp("plain.ocg");
        write_ocg_path(&g, None, BuildReport::default(), &path).unwrap();
        let opened = open_ocg_path(&path).unwrap();
        assert_eq!(opened.graph, g);
        assert!(opened.relabeling().is_none());
        assert!(!opened.info.relabeled);
        verify_ocg_path(&path).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = CsrGraph::empty(0);
        let path = tmp("empty.ocg");
        write_ocg_path(&g, None, BuildReport::default(), &path).unwrap();
        let opened = open_ocg_path(&path).unwrap();
        assert_eq!(opened.graph.node_count(), 0);
        assert_eq!(opened.graph.edge_count(), 0);
        verify_ocg_path(&path).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic_and_short_files() {
        let path = tmp("garbage.ocg");
        std::fs::write(&path, b"not a graph").unwrap();
        let err = open_ocg_path(&path).unwrap_err();
        assert!(err.to_string().contains("garbage.ocg"), "{err}");

        std::fs::write(&path, [0u8; 128]).unwrap();
        let err = open_ocg_path(&path).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_unsupported_version() {
        let (g, _, report) = sample();
        let path = tmp("version.ocg");
        write_ocg_path(&g, None, report, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = open_ocg_path(&path).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_truncated_payload() {
        let (g, _, report) = sample();
        let path = tmp("truncated.ocg");
        write_ocg_path(&g, None, report, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        let err = open_ocg_path(&path).unwrap_err();
        assert!(err.to_string().contains("header implies"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn verify_catches_payload_corruption_open_does_not() {
        let (g, r, report) = sample();
        let path = tmp("corrupt.ocg");
        write_ocg_path(&g, Some(&r), report, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a neighbor entry: structurally plausible, semantically wrong.
        let neighbors_start = OCG_HEADER_LEN + 4 * (g.node_count() + 1);
        bytes[neighbors_start] ^= 1;
        std::fs::write(&path, &bytes).unwrap();
        assert!(open_ocg_path(&path).is_ok(), "open is O(1), trusts header");
        let err = verify_ocg_path(&path).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn payload_checksum_matches_written_file() {
        let (g, r, report) = sample();
        let path = tmp("checksum.ocg");
        write_ocg_path(&g, Some(&r), report, &path).unwrap();
        let info = read_ocg_info(&path).unwrap();
        assert_eq!(info.checksum, payload_checksum(&g, Some(&r)));
        assert_ne!(info.checksum, payload_checksum(&g, None));
        std::fs::remove_file(&path).ok();
    }
}
