//! Compressed sparse row (CSR) storage for simple undirected graphs.
//!
//! This is the "ad hoc C++ structure" of the paper's Section V, rebuilt in
//! Rust: offsets + a flat neighbor array, with each undirected edge stored in
//! both endpoint rows. Neighbor rows are sorted, which gives `O(log deg)`
//! adjacency tests via binary search and cache-friendly merges (used heavily
//! by the triangle-counting path of the CFinder baseline).
//!
//! Offsets are `u32`, halving the offset-array footprint on 64-bit targets
//! and doubling how many rows fit a cache line during neighbor scans. The
//! cost is a capacity ceiling of `u32::MAX` *directed* adjacency entries
//! (≈ 2.1 × 10⁹ undirected edges) — an order of magnitude above the paper's
//! largest experiment — enforced by [`crate::builder::GraphBuilder`].

use crate::node::NodeId;
use crate::storage::{NodeSlab, U32Slab};

/// A simple undirected graph in CSR form.
///
/// Invariants (checked by [`CsrGraph::validate`], relied upon everywhere):
/// * `offsets.len() == node_count + 1`, `offsets[0] == 0`, non-decreasing;
/// * each neighbor row is strictly sorted (no duplicates, no self-loops);
/// * adjacency is symmetric: `v ∈ N(u)` iff `u ∈ N(v)`.
///
/// The two arrays live in `storage` slabs: owned `Vec`s for graphs
/// built in RAM, read-only windows of a memory-mapped `.ocg` file for graphs
/// opened via [`crate::ocg::open_ocg_path`]. Every accessor goes through the
/// same slice view either way, so consumers cannot tell the difference.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    offsets: U32Slab,
    neighbors: NodeSlab,
}

impl PartialEq for CsrGraph {
    fn eq(&self, other: &Self) -> bool {
        self.offsets_slice() == other.offsets_slice()
            && self.neighbors_slice() == other.neighbors_slice()
    }
}

impl Eq for CsrGraph {}

impl CsrGraph {
    /// Builds a CSR graph from raw parts.
    ///
    /// Callers must uphold the invariants in the type docs; this is intended
    /// for use by [`crate::builder::GraphBuilder`] and deserialization.
    ///
    /// Only the O(1) structural frame is asserted here (non-empty offsets,
    /// `offsets[0] == 0`, last offset equal to the neighbor count). The
    /// O(n + m) row checks — monotone offsets, sorted rows, symmetry —
    /// live in [`CsrGraph::validate`], which callers assembling parts from
    /// untrusted data should invoke explicitly; running it on every
    /// construction made large generated-graph tests pay a full validation
    /// sweep per build.
    pub fn from_parts(offsets: Vec<u32>, neighbors: Vec<NodeId>) -> Self {
        assert!(!offsets.is_empty(), "offsets must have at least one entry");
        assert_eq!(offsets[0], 0, "offsets[0] must be 0");
        assert_eq!(
            *offsets.last().unwrap() as usize,
            neighbors.len(),
            "last offset must equal neighbor array length"
        );
        CsrGraph {
            offsets: U32Slab::Owned(offsets),
            neighbors: NodeSlab::Owned(neighbors),
        }
    }

    /// Assembles a graph directly from storage slabs (mmap-backed loads).
    /// Same O(1) structural asserts as [`CsrGraph::from_parts`].
    pub(crate) fn from_slabs(offsets: U32Slab, neighbors: NodeSlab) -> Self {
        {
            let off = offsets.as_slice();
            assert!(!off.is_empty(), "offsets must have at least one entry");
            assert_eq!(off[0], 0, "offsets[0] must be 0");
            assert_eq!(
                *off.last().unwrap() as usize,
                neighbors.as_slice().len(),
                "last offset must equal neighbor array length"
            );
        }
        CsrGraph { offsets, neighbors }
    }

    /// An empty graph with `n` isolated nodes.
    pub fn empty(n: usize) -> Self {
        CsrGraph {
            offsets: U32Slab::Owned(vec![0; n + 1]),
            neighbors: NodeSlab::Owned(Vec::new()),
        }
    }

    /// The raw offsets array (`node_count + 1` entries).
    #[inline]
    pub(crate) fn offsets_slice(&self) -> &[u32] {
        self.offsets.as_slice()
    }

    /// The raw directed neighbor array.
    #[inline]
    pub(crate) fn neighbors_slice(&self) -> &[NodeId] {
        self.neighbors.as_slice()
    }

    /// True if this graph's arrays are windows of a mapped file rather than
    /// owned heap memory.
    pub fn is_mapped(&self) -> bool {
        matches!(self.offsets, U32Slab::Mapped { .. })
    }

    /// A deep copy whose arrays are owned heap `Vec`s regardless of this
    /// graph's backing — the way to materialize a mapped graph fully in
    /// RAM (e.g. to compare the mmap path against in-memory behavior).
    pub fn to_owned_storage(&self) -> CsrGraph {
        CsrGraph::from_parts(
            self.offsets_slice().to_vec(),
            self.neighbors_slice().to_vec(),
        )
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.as_slice().len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.neighbors.as_slice().len() / 2
    }

    /// True if the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.node_count() == 0
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let i = v.index();
        let offsets = self.offsets.as_slice();
        (offsets[i + 1] - offsets[i]) as usize
    }

    /// Sorted neighbor slice of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let i = v.index();
        let offsets = self.offsets.as_slice();
        &self.neighbors.as_slice()[offsets[i] as usize..offsets[i + 1] as usize]
    }

    /// True if `{u, v}` is an edge. `O(log deg)`; probes the smaller row.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId::new)
    }

    /// Iterator over undirected edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Maximum degree, or 0 for an empty graph.
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Average degree (`2m / n`), or 0.0 for an empty graph.
    pub fn average_degree(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            (self.neighbors.as_slice().len() as f64) / (self.node_count() as f64)
        }
    }

    /// Number of edges with both endpoints in `set_flags` (a node→bool mask).
    ///
    /// This is `Ein(S)` from the paper's fitness function. `O(Σ_{v∈S} deg v)`.
    pub fn internal_edges(&self, members: &[NodeId], set_flags: &[bool]) -> usize {
        let mut twice = 0usize;
        for &v in members {
            debug_assert!(set_flags[v.index()]);
            twice += self
                .neighbors(v)
                .iter()
                .filter(|&&u| set_flags[u.index()])
                .count();
        }
        twice / 2
    }

    /// Relabels the graph through `relabeling`: node `i` of the result is
    /// node `relabeling.to_original(i)` of `self`, with every row remapped
    /// and re-sorted. `O(n + m log max_degree)`.
    ///
    /// # Panics
    /// Panics if the relabeling's length differs from the node count.
    pub fn relabeled(&self, relabeling: &crate::relabel::Relabeling) -> CsrGraph {
        assert_eq!(
            relabeling.len(),
            self.node_count(),
            "relabeling covers a different node count"
        );
        let n = self.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut total = 0u32;
        for new in 0..n as u32 {
            total += self.degree(relabeling.to_original(NodeId(new))) as u32;
            offsets.push(total);
        }
        let mut neighbors = vec![NodeId(0); total as usize];
        for new in 0..n as u32 {
            let row =
                &mut neighbors[offsets[new as usize] as usize..offsets[new as usize + 1] as usize];
            for (slot, &u) in row
                .iter_mut()
                .zip(self.neighbors(relabeling.to_original(NodeId(new))))
            {
                *slot = relabeling.to_compact(u);
            }
            row.sort_unstable();
        }
        CsrGraph::from_parts(offsets, neighbors)
    }

    /// Checks all CSR invariants; returns a description of the first failure.
    pub fn validate(&self) -> Result<(), String> {
        let offsets = self.offsets.as_slice();
        if offsets.is_empty() {
            return Err("offsets must have at least one entry".into());
        }
        if offsets[0] != 0 {
            return Err("offsets[0] must be 0".into());
        }
        if *offsets.last().unwrap() as usize != self.neighbors.as_slice().len() {
            return Err("last offset must equal neighbor array length".into());
        }
        let n = self.node_count();
        for w in offsets.windows(2) {
            if w[0] > w[1] {
                return Err("offsets must be non-decreasing".into());
            }
        }
        for u in self.nodes() {
            let row = self.neighbors(u);
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("row of {u:?} not strictly sorted"));
                }
            }
            for &v in row {
                if v.index() >= n {
                    return Err(format!("neighbor {v:?} of {u:?} out of bounds"));
                }
                if v == u {
                    return Err(format!("self-loop at {u:?}"));
                }
                if self.neighbors(v).binary_search(&u).is_err() {
                    return Err(format!("edge {u:?}-{v:?} not symmetric"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn triangle_plus_pendant() -> CsrGraph {
        // 0-1, 1-2, 0-2 triangle; 3 pendant on 2; 4 isolated.
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        b.add_edge(2, 3);
        b.build()
    }

    #[test]
    fn counts_and_degrees() {
        let g = triangle_plus_pendant();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(NodeId(2)), 3);
        assert_eq!(g.degree(NodeId(4)), 0);
        assert_eq!(g.max_degree(), 3);
        assert!((g.average_degree() - 8.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn neighbors_sorted_and_symmetric() {
        let g = triangle_plus_pendant();
        assert_eq!(g.neighbors(NodeId(2)), &[NodeId(0), NodeId(1), NodeId(3)]);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn has_edge_both_directions_and_non_edges() {
        let g = triangle_plus_pendant();
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(1), NodeId(0)));
        assert!(!g.has_edge(NodeId(0), NodeId(3)));
        assert!(!g.has_edge(NodeId(4), NodeId(0)));
        assert!(!g.has_edge(NodeId(1), NodeId(1)), "no self loops");
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = triangle_plus_pendant();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        for (u, v) in &edges {
            assert!(u < v);
        }
        assert!(edges.contains(&(NodeId(0), NodeId(2))));
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(0);
        assert!(g.is_empty());
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert!(g.validate().is_ok());

        let g = CsrGraph::empty(3);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn internal_edges_counts_ein() {
        let g = triangle_plus_pendant();
        let mut flags = vec![false; 5];
        for i in [0usize, 1, 2] {
            flags[i] = true;
        }
        let members = [NodeId(0), NodeId(1), NodeId(2)];
        assert_eq!(g.internal_edges(&members, &flags), 3);

        let mut flags2 = vec![false; 5];
        flags2[2] = true;
        flags2[3] = true;
        assert_eq!(g.internal_edges(&[NodeId(2), NodeId(3)], &flags2), 1);
    }

    #[test]
    fn validate_catches_asymmetry() {
        // 0 -> 1 but not 1 -> 0.
        let g = CsrGraph::from_parts(vec![0, 1, 1], vec![NodeId(1)]);
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_catches_self_loop() {
        let g = CsrGraph::from_parts(vec![0, 1], vec![NodeId(0)]);
        assert!(g.validate().is_err());
    }

    #[test]
    fn owned_graphs_are_not_mapped() {
        assert!(!triangle_plus_pendant().is_mapped());
    }
}
