//! Node relabelings: bijections between an *original* and a *compact* id
//! space, with cover mapping.
//!
//! The paper's timing experiments (Section V) credit much of OCA's speed
//! to a cache-conscious "ad hoc" graph layout. A degree-ordered relabeling
//! is the layout half of that: renumbering nodes by descending degree
//! packs the hottest adjacency rows — the hubs every ascent keeps
//! re-scanning — into one contiguous prefix of the neighbor array, and
//! makes the small ids that dominate neighbor lists cheap to compare and
//! cache. Algorithms run on the relabeled graph and report results in
//! original ids by mapping covers back through the [`Relabeling`].

use crate::community::{Community, Cover};
use crate::csr::CsrGraph;
use crate::node::NodeId;

/// A bijection between original node ids and a compact relabeled space.
///
/// `new_to_old[i]` is the original id of relabeled node `i`;
/// `old_to_new` is its inverse. Both directions are O(1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relabeling {
    new_to_old: Vec<NodeId>,
    old_to_new: Vec<NodeId>,
}

impl Relabeling {
    /// The identity relabeling on `n` nodes.
    pub fn identity(n: usize) -> Self {
        let ids: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        Relabeling {
            new_to_old: ids.clone(),
            old_to_new: ids,
        }
    }

    /// Builds the relabeling from the new→old permutation.
    ///
    /// # Panics
    /// Panics if `new_to_old` is not a permutation of `0..len`.
    pub fn from_new_to_old(new_to_old: Vec<NodeId>) -> Self {
        let n = new_to_old.len();
        let mut old_to_new = vec![NodeId(u32::MAX); n];
        for (new, &old) in new_to_old.iter().enumerate() {
            assert!(old.index() < n, "id {old} out of range for {n} nodes");
            assert_eq!(
                old_to_new[old.index()],
                NodeId(u32::MAX),
                "id {old} appears twice — not a permutation"
            );
            old_to_new[old.index()] = NodeId(new as u32);
        }
        Relabeling {
            new_to_old,
            old_to_new,
        }
    }

    /// The degree-descending relabeling of `graph`: relabeled id 0 is the
    /// highest-degree node. Ties break by ascending original id, so the
    /// result is deterministic.
    pub fn degree_descending(graph: &CsrGraph) -> Self {
        let mut order: Vec<NodeId> = (0..graph.node_count() as u32).map(NodeId).collect();
        order.sort_unstable_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));
        Relabeling::from_new_to_old(order)
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.new_to_old.len()
    }

    /// True for the empty relabeling.
    pub fn is_empty(&self) -> bool {
        self.new_to_old.is_empty()
    }

    /// True if the relabeling maps every id to itself.
    pub fn is_identity(&self) -> bool {
        self.new_to_old
            .iter()
            .enumerate()
            .all(|(i, &old)| old.index() == i)
    }

    /// Maps a relabeled (compact) id back to the original id.
    #[inline]
    pub fn to_original(&self, new: NodeId) -> NodeId {
        self.new_to_old[new.index()]
    }

    /// Maps an original id to its relabeled (compact) id.
    #[inline]
    pub fn to_compact(&self, old: NodeId) -> NodeId {
        self.old_to_new[old.index()]
    }

    /// Maps a community of relabeled ids back to original ids.
    pub fn community_to_original(&self, community: &Community) -> Community {
        Community::new(
            community
                .members()
                .iter()
                .map(|&v| self.to_original(v))
                .collect(),
        )
    }

    /// Maps a cover over relabeled ids back to original ids.
    pub fn cover_to_original(&self, cover: &Cover) -> Cover {
        Cover::new(
            cover.node_count(),
            cover
                .communities()
                .iter()
                .map(|c| self.community_to_original(c))
                .collect(),
        )
    }

    /// Maps a community of original ids into the relabeled (compact)
    /// space — the inverse of [`Relabeling::community_to_original`].
    pub fn community_to_compact(&self, community: &Community) -> Community {
        Community::new(
            community
                .members()
                .iter()
                .map(|&v| self.to_compact(v))
                .collect(),
        )
    }

    /// Maps a cover expressed in original ids onto the relabeled graph —
    /// the inverse of [`Relabeling::cover_to_original`]. Used to bring
    /// ground-truth or warm-start covers (stored in input ids) into the
    /// id space detection runs in.
    pub fn cover_to_compact(&self, cover: &Cover) -> Cover {
        Cover::new(
            cover.node_count(),
            cover
                .communities()
                .iter()
                .map(|c| self.community_to_compact(c))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    fn pendant_path() -> CsrGraph {
        // Degrees: 0 → 1, 1 → 3, 2 → 2, 3 → 1, 4 → 1.
        from_edges(5, [(0, 1), (1, 2), (2, 3), (1, 4)])
    }

    #[test]
    fn identity_round_trips() {
        let r = Relabeling::identity(4);
        assert!(r.is_identity());
        assert_eq!(r.len(), 4);
        for v in 0..4u32 {
            assert_eq!(r.to_original(NodeId(v)), NodeId(v));
            assert_eq!(r.to_compact(NodeId(v)), NodeId(v));
        }
    }

    #[test]
    fn degree_descending_orders_hubs_first() {
        let g = pendant_path();
        let r = Relabeling::degree_descending(&g);
        // Node 1 (degree 3) becomes 0, node 2 (degree 2) becomes 1, the
        // degree-1 nodes follow in ascending original id.
        assert_eq!(r.to_original(NodeId(0)), NodeId(1));
        assert_eq!(r.to_original(NodeId(1)), NodeId(2));
        assert_eq!(r.to_original(NodeId(2)), NodeId(0));
        assert_eq!(r.to_original(NodeId(3)), NodeId(3));
        assert_eq!(r.to_original(NodeId(4)), NodeId(4));
        assert!(!r.is_identity());
    }

    #[test]
    fn round_trip_is_the_identity_both_ways() {
        let g = pendant_path();
        let r = Relabeling::degree_descending(&g);
        for v in 0..g.node_count() as u32 {
            assert_eq!(r.to_compact(r.to_original(NodeId(v))), NodeId(v));
            assert_eq!(r.to_original(r.to_compact(NodeId(v))), NodeId(v));
        }
    }

    #[test]
    fn relabeled_graph_is_isomorphic() {
        let g = pendant_path();
        let r = Relabeling::degree_descending(&g);
        let h = g.relabeled(&r);
        assert!(h.validate().is_ok());
        assert_eq!(h.node_count(), g.node_count());
        assert_eq!(h.edge_count(), g.edge_count());
        for v in 0..g.node_count() as u32 {
            let old = r.to_original(NodeId(v));
            assert_eq!(h.degree(NodeId(v)), g.degree(old));
            for &u in h.neighbors(NodeId(v)) {
                assert!(g.has_edge(old, r.to_original(u)));
            }
        }
        // Degree-descending means non-increasing degrees along new ids.
        for v in 1..h.node_count() as u32 {
            assert!(h.degree(NodeId(v)) <= h.degree(NodeId(v - 1)));
        }
    }

    #[test]
    fn cover_maps_back_to_original_ids() {
        let g = pendant_path();
        let r = Relabeling::degree_descending(&g);
        // In relabeled space: {0, 1} = original {1, 2}.
        let cover = Cover::new(5, vec![Community::from_raw([0, 1])]);
        let mapped = r.cover_to_original(&cover);
        assert_eq!(mapped.communities()[0].members(), &[NodeId(1), NodeId(2)]);
        assert_eq!(mapped.node_count(), 5);
        // The inverse crossing round-trips.
        assert_eq!(r.cover_to_compact(&mapped), cover);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn duplicate_ids_are_rejected() {
        Relabeling::from_new_to_old(vec![NodeId(0), NodeId(0)]);
    }

    #[test]
    fn empty_relabeling() {
        let r = Relabeling::identity(0);
        assert!(r.is_empty());
        assert!(r.is_identity());
    }
}
