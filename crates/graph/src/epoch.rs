//! Epoch-stamped counters: a reusable flat counter array with O(touched)
//! clearing.
//!
//! The postprocessing sweeps (community merging, orphan assignment) need
//! "count occurrences of a few keys out of a large dense id space, then
//! start over" thousands of times per run. A `HashMap` pays hashing and
//! allocation per key; a plain `Vec<u32>` pays an O(n) clear per round.
//! Epoch stamping gives the flat-array read/write cost with O(1) logical
//! clearing: each slot remembers the epoch it was last written in, and a
//! slot whose stamp is stale reads as zero.

/// A dense `0..len` counter array with epoch-stamped O(1) reset.
///
/// Typical loop: [`EpochCounters::begin`] once per round, [`bump`] per
/// observation, then iterate [`touched`] to read the non-zero counts.
///
/// [`bump`]: EpochCounters::bump
/// [`touched`]: EpochCounters::touched
#[derive(Debug, Clone)]
pub struct EpochCounters {
    /// Epoch in which `count[i]` was last written.
    stamp: Vec<u32>,
    count: Vec<u32>,
    /// Current epoch; stamps not equal to it are stale.
    epoch: u32,
    /// Keys bumped since the last [`EpochCounters::begin`], in first-bump
    /// order (deterministic for a deterministic bump sequence).
    touched: Vec<u32>,
}

impl EpochCounters {
    /// Counters for keys `0..len`, all logically zero.
    pub fn new(len: usize) -> Self {
        assert!(len <= u32::MAX as usize, "key space exceeds u32");
        EpochCounters {
            stamp: vec![0; len],
            count: vec![0; len],
            epoch: 0,
            touched: Vec::new(),
        }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.stamp.len()
    }

    /// True if the key space is empty.
    pub fn is_empty(&self) -> bool {
        self.stamp.is_empty()
    }

    /// Starts a new round: every counter logically resets to zero in O(1)
    /// (amortized — on the rare epoch wrap-around the stamp array is
    /// rewritten once so stale stamps can never alias the new epoch).
    pub fn begin(&mut self) {
        self.touched.clear();
        match self.epoch.checked_add(1) {
            Some(e) => self.epoch = e,
            None => {
                self.stamp.fill(0);
                self.epoch = 1;
            }
        }
    }

    /// Increments the counter for `key`, returning the new value.
    #[inline]
    pub fn bump(&mut self, key: u32) -> u32 {
        let i = key as usize;
        if self.stamp[i] != self.epoch {
            self.stamp[i] = self.epoch;
            self.count[i] = 1;
            self.touched.push(key);
            1
        } else {
            self.count[i] += 1;
            self.count[i]
        }
    }

    /// The current count for `key` (zero if untouched this round).
    #[inline]
    pub fn get(&self, key: u32) -> u32 {
        let i = key as usize;
        if self.stamp[i] == self.epoch {
            self.count[i]
        } else {
            0
        }
    }

    /// Keys bumped since [`EpochCounters::begin`], in first-bump order.
    pub fn touched(&self) -> &[u32] {
        &self.touched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_resets() {
        let mut c = EpochCounters::new(5);
        c.begin();
        assert_eq!(c.bump(3), 1);
        assert_eq!(c.bump(3), 2);
        assert_eq!(c.bump(1), 1);
        assert_eq!(c.get(3), 2);
        assert_eq!(c.get(0), 0);
        assert_eq!(c.touched(), &[3, 1], "first-bump order");
        c.begin();
        assert_eq!(c.get(3), 0, "begin logically zeroes everything");
        assert!(c.touched().is_empty());
        assert_eq!(c.bump(3), 1, "counts restart from zero");
    }

    #[test]
    fn epoch_wraparound_cannot_resurrect_stale_counts() {
        let mut c = EpochCounters::new(2);
        c.begin();
        c.bump(0);
        // Force the wrap: the next begin() must rewrite the stamps so the
        // old stamp value cannot alias the restarted epoch.
        c.epoch = u32::MAX;
        c.stamp[1] = u32::MAX; // a stale stamp that would alias epoch MAX
        c.begin();
        assert_eq!(c.get(0), 0);
        assert_eq!(c.get(1), 0);
        assert_eq!(c.bump(1), 1);
    }

    #[test]
    fn empty_key_space() {
        let mut c = EpochCounters::new(0);
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        c.begin();
        assert!(c.touched().is_empty());
    }
}
