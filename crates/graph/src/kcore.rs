//! k-core decomposition (Matula–Beck peeling).
//!
//! The core number of a node is the largest `k` such that the node survives
//! in the maximal subgraph of minimum degree `k`. Dense-core seeding
//! strategies and the summarization crate use it to rank nodes by how
//! deeply they sit inside communities.

use crate::csr::CsrGraph;
use crate::node::NodeId;

/// The k-core decomposition of a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreDecomposition {
    /// Core number per node.
    core: Vec<u32>,
    /// The maximum core number (degeneracy of the graph).
    degeneracy: u32,
}

impl CoreDecomposition {
    /// Computes core numbers with the linear-time bucket peeling algorithm.
    pub fn compute(graph: &CsrGraph) -> Self {
        let n = graph.node_count();
        if n == 0 {
            return CoreDecomposition {
                core: Vec::new(),
                degeneracy: 0,
            };
        }
        let mut degree: Vec<u32> = graph.nodes().map(|v| graph.degree(v) as u32).collect();
        let max_degree = *degree.iter().max().unwrap() as usize;
        // Bucket sort nodes by degree.
        let mut bin = vec![0usize; max_degree + 2];
        for &d in &degree {
            bin[d as usize + 1] += 1;
        }
        for i in 1..bin.len() {
            bin[i] += bin[i - 1];
        }
        let mut pos = vec![0usize; n]; // position of node in `vert`
        let mut vert = vec![0u32; n]; // nodes sorted by current degree
        {
            let mut cursor = bin.clone();
            for v in 0..n {
                let d = degree[v] as usize;
                pos[v] = cursor[d];
                vert[cursor[d]] = v as u32;
                cursor[d] += 1;
            }
        }
        // `bin[d]` = index of first node with degree ≥ d.
        let mut core = degree.clone();
        let mut degeneracy = 0u32;
        for i in 0..n {
            let v = vert[i] as usize;
            degeneracy = degeneracy.max(core[v]);
            for &u in graph.neighbors(NodeId(v as u32)) {
                let u = u.index();
                if degree[u] > degree[v] {
                    // Move u one bucket down: swap with the first node of
                    // its current bucket.
                    let du = degree[u] as usize;
                    let pu = pos[u];
                    let pw = bin[du];
                    let w = vert[pw] as usize;
                    if u != w {
                        vert.swap(pu, pw);
                        pos[u] = pw;
                        pos[w] = pu;
                    }
                    bin[du] += 1;
                    degree[u] -= 1;
                    core[u] = degree[u];
                }
            }
        }
        // Core number of v is its degree at peel time, already in `core`.
        CoreDecomposition { core, degeneracy }
    }

    /// Core number of a node.
    pub fn core_number(&self, v: NodeId) -> u32 {
        self.core[v.index()]
    }

    /// All core numbers, indexed by node.
    pub fn core_numbers(&self) -> &[u32] {
        &self.core
    }

    /// The graph's degeneracy (maximum core number).
    pub fn degeneracy(&self) -> u32 {
        self.degeneracy
    }

    /// Nodes whose core number is at least `k`.
    pub fn k_core_members(&self, k: u32) -> Vec<NodeId> {
        self.core
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c >= k)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    #[test]
    fn clique_core_numbers() {
        // K4: everything is in the 3-core.
        let g = from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let d = CoreDecomposition::compute(&g);
        assert_eq!(d.degeneracy(), 3);
        for v in g.nodes() {
            assert_eq!(d.core_number(v), 3);
        }
    }

    #[test]
    fn path_is_one_core() {
        let g = from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let d = CoreDecomposition::compute(&g);
        assert_eq!(d.degeneracy(), 1);
        assert!(g.nodes().all(|v| d.core_number(v) == 1));
    }

    #[test]
    fn clique_with_pendant() {
        // Triangle + pendant: pendant is 1-core, triangle is 2-core.
        let g = from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)]);
        let d = CoreDecomposition::compute(&g);
        assert_eq!(d.core_number(NodeId(3)), 1);
        assert_eq!(d.core_number(NodeId(0)), 2);
        assert_eq!(d.core_number(NodeId(2)), 2);
        assert_eq!(d.degeneracy(), 2);
        assert_eq!(d.k_core_members(2).len(), 3);
    }

    #[test]
    fn isolated_nodes_are_zero_core() {
        let g = from_edges(3, [(0, 1)]);
        let d = CoreDecomposition::compute(&g);
        assert_eq!(d.core_number(NodeId(2)), 0);
        assert_eq!(d.k_core_members(0).len(), 3);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(0);
        let d = CoreDecomposition::compute(&g);
        assert_eq!(d.degeneracy(), 0);
        assert!(d.core_numbers().is_empty());
    }

    #[test]
    fn chain_of_cliques_peels_correctly() {
        // Two triangles joined by a path of two nodes.
        let g = from_edges(
            8,
            [
                (0, 1),
                (1, 2),
                (0, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (4, 6),
                (6, 7),
            ],
        );
        let d = CoreDecomposition::compute(&g);
        assert_eq!(d.core_number(NodeId(0)), 2);
        // Node 3 keeps degree 2 (to nodes 2 and 4) in the subgraph spanning
        // both triangles and the bridge, so it survives into the 2-core —
        // a k-core needs min degree k, not a cycle through every node.
        assert_eq!(d.core_number(NodeId(3)), 2);
        assert_eq!(d.core_number(NodeId(5)), 2);
        assert_eq!(d.core_number(NodeId(7)), 1);
    }

    #[test]
    fn core_invariant_holds() {
        // Property: within the k-core subgraph every node has ≥ k neighbors
        // inside the subgraph.
        let g = from_edges(
            10,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (4, 6),
                (5, 7),
                (4, 7),
                (5, 8),
                (8, 9),
            ],
        );
        let d = CoreDecomposition::compute(&g);
        for k in 0..=d.degeneracy() {
            let members = d.k_core_members(k);
            let inside: std::collections::HashSet<_> = members.iter().copied().collect();
            for &v in &members {
                let deg_in = g.neighbors(v).iter().filter(|u| inside.contains(u)).count();
                assert!(
                    deg_in as u32 >= k,
                    "node {v:?} has {deg_in} < {k} neighbors in the {k}-core"
                );
            }
        }
    }

    use crate::csr::CsrGraph;
}
