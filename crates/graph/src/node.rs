//! Node identifiers.
//!
//! Nodes are dense `u32` indices. A 32-bit id keeps adjacency arrays half the
//! size of `usize` indices on 64-bit targets, which matters for the
//! 10⁷-node-scale graphs the paper's Wikipedia experiment targets (Section V).

use std::fmt;

/// A node identifier: a dense index in `0..graph.node_count()`.
///
/// `NodeId` is a transparent newtype over `u32`, so storing neighbor lists as
/// `Vec<NodeId>` costs 4 bytes per entry.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[repr(transparent)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Creates a node id from a raw index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Returns the raw index as `usize`, for slice indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` index.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(index: u32) -> Self {
        NodeId(index)
    }
}

impl From<NodeId> for u32 {
    #[inline]
    fn from(id: NodeId) -> Self {
        id.0
    }
}

impl From<NodeId> for usize {
    #[inline]
    fn from(id: NodeId) -> Self {
        id.index()
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_index_round_trip() {
        let n = NodeId::new(42);
        assert_eq!(n.index(), 42);
        assert_eq!(n.raw(), 42);
        assert_eq!(u32::from(n), 42);
        assert_eq!(usize::from(n), 42);
        assert_eq!(NodeId::from(42u32), n);
    }

    #[test]
    fn ordering_follows_raw_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::new(7), NodeId::new(7));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", NodeId::new(3)), "3");
        assert_eq!(format!("{:?}", NodeId::new(3)), "n3");
    }

    #[test]
    fn is_four_bytes() {
        assert_eq!(std::mem::size_of::<NodeId>(), 4);
        assert_eq!(std::mem::size_of::<Option<NodeId>>(), 8);
    }
}
