//! Communities (node subsets) and covers (possibly-overlapping collections).
//!
//! A *cover* generalizes a partition: communities may overlap and some nodes
//! may be orphans (belong to no community) — both situations are explicitly
//! embraced by the paper's Section IV.

use crate::csr::CsrGraph;
use crate::node::NodeId;

/// A community: a sorted, duplicate-free set of nodes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Community {
    members: Vec<NodeId>,
}

impl Community {
    /// Creates a community from any node list (sorted and deduplicated).
    pub fn new(mut members: Vec<NodeId>) -> Self {
        members.sort_unstable();
        members.dedup();
        Community { members }
    }

    /// Creates a community from raw `u32` ids.
    pub fn from_raw<I: IntoIterator<Item = u32>>(ids: I) -> Self {
        Community::new(ids.into_iter().map(NodeId::new).collect())
    }

    /// The sorted member slice.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the community has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Membership test in `O(log n)`.
    pub fn contains(&self, v: NodeId) -> bool {
        self.members.binary_search(&v).is_ok()
    }

    /// Size of the intersection with `other` (linear merge).
    pub fn intersection_size(&self, other: &Community) -> usize {
        let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
        let (a, b) = (&self.members, &other.members);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// Size of the union with `other`.
    pub fn union_size(&self, other: &Community) -> usize {
        self.len() + other.len() - self.intersection_size(other)
    }

    /// The paper's similarity `ρ(C, D) = 1 − (|C\D| + |D\C|)/|C∪D|` (V.1),
    /// which equals the Jaccard index `|C∩D| / |C∪D|`.
    ///
    /// Two empty communities are defined to have similarity 1.
    pub fn similarity(&self, other: &Community) -> f64 {
        let union = self.union_size(other);
        if union == 0 {
            return 1.0;
        }
        self.intersection_size(other) as f64 / union as f64
    }

    /// Merges with `other` into a new community (set union).
    pub fn merged(&self, other: &Community) -> Community {
        let mut out = Vec::with_capacity(self.union_size(other));
        let (a, b) = (&self.members, &other.members);
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        Community { members: out }
    }

    /// Number of internal edges of this community in `graph`.
    pub fn internal_edges(&self, graph: &CsrGraph) -> usize {
        let mut twice = 0usize;
        for &v in &self.members {
            twice += graph
                .neighbors(v)
                .iter()
                .filter(|u| self.contains(**u))
                .count();
        }
        twice / 2
    }

    /// Internal edge density `Ein / (s(s−1)/2)`; 0 for communities of size < 2.
    pub fn density(&self, graph: &CsrGraph) -> f64 {
        let s = self.len();
        if s < 2 {
            return 0.0;
        }
        let possible = s * (s - 1) / 2;
        self.internal_edges(graph) as f64 / possible as f64
    }

    /// How many members lie in the *closed* neighborhood of `v` (its
    /// neighbors plus `v` itself) — the overlap score the query service's
    /// `topk` endpoint ranks communities by. Runs in
    /// `O(deg(v) · log |C|)`, so it is cheap even against large
    /// communities.
    pub fn neighborhood_overlap(&self, graph: &CsrGraph, v: NodeId) -> usize {
        let mut count = usize::from(self.contains(v));
        for &u in graph.neighbors(v) {
            if self.contains(u) {
                count += 1;
            }
        }
        count
    }
}

impl FromIterator<NodeId> for Community {
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        Community::new(iter.into_iter().collect())
    }
}

/// A cover: a collection of possibly-overlapping communities over a graph
/// with `node_count` nodes.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Cover {
    node_count: usize,
    communities: Vec<Community>,
}

impl Cover {
    /// Creates a cover over `node_count` nodes; empty communities are dropped.
    pub fn new(node_count: usize, communities: Vec<Community>) -> Self {
        let communities = communities.into_iter().filter(|c| !c.is_empty()).collect();
        Cover {
            node_count,
            communities,
        }
    }

    /// An empty cover.
    pub fn empty(node_count: usize) -> Self {
        Cover {
            node_count,
            communities: Vec::new(),
        }
    }

    /// Number of nodes in the underlying graph.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The communities.
    pub fn communities(&self) -> &[Community] {
        &self.communities
    }

    /// Number of communities.
    pub fn len(&self) -> usize {
        self.communities.len()
    }

    /// True if there are no communities.
    pub fn is_empty(&self) -> bool {
        self.communities.is_empty()
    }

    /// Adds a community (ignored if empty).
    pub fn push(&mut self, c: Community) {
        if !c.is_empty() {
            self.communities.push(c);
        }
    }

    /// For each node, the indices of the communities containing it.
    pub fn membership_index(&self) -> Vec<Vec<u32>> {
        let mut idx = vec![Vec::new(); self.node_count];
        for (ci, c) in self.communities.iter().enumerate() {
            for &v in c.members() {
                idx[v.index()].push(ci as u32);
            }
        }
        idx
    }

    /// Nodes that belong to no community.
    pub fn orphans(&self) -> Vec<NodeId> {
        let mut covered = vec![false; self.node_count];
        for c in &self.communities {
            for &v in c.members() {
                covered[v.index()] = true;
            }
        }
        covered
            .iter()
            .enumerate()
            .filter(|&(_, &c)| !c)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Fraction of nodes covered by at least one community.
    pub fn coverage(&self) -> f64 {
        if self.node_count == 0 {
            return 1.0;
        }
        1.0 - self.orphans().len() as f64 / self.node_count as f64
    }

    /// Average number of communities per covered node (≥ 1; 0 if nothing
    /// covered). Values above 1 quantify overlap.
    pub fn average_memberships(&self) -> f64 {
        let idx = self.membership_index();
        let covered: Vec<_> = idx.iter().filter(|m| !m.is_empty()).collect();
        if covered.is_empty() {
            return 0.0;
        }
        covered.iter().map(|m| m.len()).sum::<usize>() as f64 / covered.len() as f64
    }

    /// Number of nodes in more than one community.
    pub fn overlap_node_count(&self) -> usize {
        self.membership_index()
            .iter()
            .filter(|m| m.len() > 1)
            .count()
    }

    /// The `k` communities with the largest overlap with the closed
    /// neighborhood of `v`, as `(community index, overlap)` pairs sorted
    /// by descending overlap (ties broken by ascending index, so the
    /// ranking is deterministic). Zero-overlap communities are never
    /// reported. This is the straightforward O(cover) reference; the serve
    /// index answers the same query from the inverted node→community map.
    pub fn top_overlapping(&self, graph: &CsrGraph, v: NodeId, k: usize) -> Vec<(u32, usize)> {
        let mut scored: Vec<(u32, usize)> = self
            .communities
            .iter()
            .enumerate()
            .map(|(ci, c)| (ci as u32, c.neighborhood_overlap(graph, v)))
            .filter(|&(_, overlap)| overlap > 0)
            .collect();
        scored.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
    }

    /// Community size statistics `(min, max, mean)`; `None` if empty.
    pub fn size_stats(&self) -> Option<(usize, usize, f64)> {
        if self.communities.is_empty() {
            return None;
        }
        let sizes: Vec<_> = self.communities.iter().map(|c| c.len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        Some((min, max, mean))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    fn c(ids: &[u32]) -> Community {
        Community::from_raw(ids.iter().copied())
    }

    #[test]
    fn community_normalizes_input() {
        let com = c(&[3, 1, 2, 1, 3]);
        assert_eq!(com.len(), 3);
        assert_eq!(
            com.members(),
            &[NodeId(1), NodeId(2), NodeId(3)],
            "sorted, deduped"
        );
        assert!(com.contains(NodeId(2)));
        assert!(!com.contains(NodeId(0)));
    }

    #[test]
    fn set_operations() {
        let a = c(&[0, 1, 2, 3]);
        let b = c(&[2, 3, 4]);
        assert_eq!(a.intersection_size(&b), 2);
        assert_eq!(a.union_size(&b), 5);
        let m = a.merged(&b);
        assert_eq!(m.len(), 5);
        assert!(m.contains(NodeId(4)));
    }

    #[test]
    fn similarity_is_jaccard() {
        let a = c(&[0, 1, 2, 3]);
        let b = c(&[2, 3, 4]);
        // |C∩D| = 2, |C∪D| = 5; paper form: 1 − (2 + 1)/5 = 2/5.
        assert!((a.similarity(&b) - 0.4).abs() < 1e-12);
        assert_eq!(a.similarity(&a), 1.0);
        assert_eq!(a.similarity(&c(&[9])), 0.0);
        assert_eq!(c(&[]).similarity(&c(&[])), 1.0);
    }

    #[test]
    fn internal_edges_and_density() {
        let g = from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3)]);
        let tri = c(&[0, 1, 2]);
        assert_eq!(tri.internal_edges(&g), 3);
        assert!((tri.density(&g) - 1.0).abs() < 1e-12);
        let pair = c(&[3, 4]);
        assert_eq!(pair.internal_edges(&g), 0);
        assert_eq!(pair.density(&g), 0.0);
        assert_eq!(c(&[0]).density(&g), 0.0, "singletons have density 0");
    }

    #[test]
    fn cover_membership_and_orphans() {
        let cover = Cover::new(6, vec![c(&[0, 1, 2]), c(&[2, 3])]);
        let idx = cover.membership_index();
        assert_eq!(idx[2], vec![0, 1], "node 2 overlaps");
        assert_eq!(idx[4], Vec::<u32>::new());
        assert_eq!(cover.orphans(), vec![NodeId(4), NodeId(5)]);
        assert!((cover.coverage() - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(cover.overlap_node_count(), 1);
    }

    #[test]
    fn cover_drops_empty_communities() {
        let cover = Cover::new(3, vec![c(&[]), c(&[0])]);
        assert_eq!(cover.len(), 1);
    }

    #[test]
    fn neighborhood_overlap_counts_the_closed_neighborhood() {
        // Triangle 0-1-2 plus pendant 2-3.
        let g = from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3)]);
        let tri = c(&[0, 1, 2]);
        assert_eq!(
            tri.neighborhood_overlap(&g, NodeId(0)),
            3,
            "member: itself + 2"
        );
        assert_eq!(
            tri.neighborhood_overlap(&g, NodeId(3)),
            1,
            "outsider adjacent to 2"
        );
        assert_eq!(
            tri.neighborhood_overlap(&g, NodeId(4)),
            0,
            "isolated outsider"
        );
    }

    #[test]
    fn top_overlapping_ranks_deterministically() {
        let g = from_edges(6, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]);
        let cover = Cover::new(6, vec![c(&[0, 1, 2]), c(&[2, 3, 4]), c(&[5])]);
        // Node 2's closed neighborhood is {0, 1, 2, 3, 4}: full overlap
        // with both triangles, none with the singleton.
        let top = cover.top_overlapping(&g, NodeId(2), 10);
        assert_eq!(top, vec![(0, 3), (1, 3)], "tie broken by index");
        let top1 = cover.top_overlapping(&g, NodeId(2), 1);
        assert_eq!(top1, vec![(0, 3)]);
        // Node 0 overlaps the first triangle fully, the second only at 2.
        assert_eq!(
            cover.top_overlapping(&g, NodeId(0), 10),
            vec![(0, 3), (1, 1)]
        );
        assert!(cover.top_overlapping(&g, NodeId(5), 10) == vec![(2, 1)]);
    }

    #[test]
    fn cover_stats() {
        let cover = Cover::new(10, vec![c(&[0, 1]), c(&[2, 3, 4, 5])]);
        let (min, max, mean) = cover.size_stats().unwrap();
        assert_eq!((min, max), (2, 4));
        assert!((mean - 3.0).abs() < 1e-12);
        assert!((cover.average_memberships() - 1.0).abs() < 1e-12);
        assert!(Cover::empty(5).size_stats().is_none());
        assert_eq!(Cover::empty(0).coverage(), 1.0);
    }
}
