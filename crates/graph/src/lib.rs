//! # oca-graph — compact undirected graph substrate
//!
//! The graph engine underlying the OCA (ICDE 2010) reproduction. The paper
//! manages graphs "with C++ structures created ad hoc for this problem"
//! (Section V); this crate is the Rust equivalent: a CSR representation
//! tuned for 10⁷-node / 10⁸-edge graphs, plus the builders, traversals,
//! component analysis, community/cover types and edge-list I/O that the
//! algorithm, baselines, generators and metrics all share.
//!
//! ## Quick tour
//!
//! ```
//! use oca_graph::{GraphBuilder, NodeId, Community, Cover};
//!
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! b.add_edge(0, 2);
//! let g = b.build();
//!
//! assert_eq!(g.edge_count(), 3);
//! assert!(g.has_edge(NodeId::new(0), NodeId::new(2)));
//!
//! let triangle = Community::from_raw([0, 1, 2]);
//! assert_eq!(triangle.internal_edges(&g), 3);
//!
//! let cover = Cover::new(4, vec![triangle]);
//! assert_eq!(cover.orphans(), vec![NodeId::new(3)]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod atomic;
pub mod builder;
pub mod ckpt;
pub mod community;
pub mod components;
pub mod cover_io;
pub mod csr;
pub mod detect;
pub mod distances;
pub mod epoch;
pub mod error;
pub mod gzip;
pub mod io;
pub mod kcore;
pub mod node;
pub mod ocg;
pub mod ocg_build;
pub mod relabel;
pub mod stats;
mod storage;
pub mod subgraph;
pub mod traversal;
pub mod union_find;

pub use atomic::atomic_write_path;
pub use builder::{from_edges, BuildReport, GraphBuilder};
pub use ckpt::{
    decode_ckpt, encode_ckpt, read_ckpt_path, write_ckpt_path, CkptEnvelope, CkptError,
    OCKPT_MAGIC, OCKPT_VERSION,
};
pub use community::{Community, Cover};
pub use components::{is_connected, Components};
pub use cover_io::{read_cover, read_cover_path, write_cover, write_cover_path};
pub use csr::CsrGraph;
pub use detect::{CancelToken, CommunityDetector, DetectContext, DetectError, Detection, Progress};
pub use distances::{bfs_distances, double_sweep_diameter, eccentricity};
pub use epoch::EpochCounters;
pub use error::{GraphError, IntegrityClass, Result};
pub use io::{
    read_edge_list, read_edge_list_path, read_edge_list_report, read_edge_list_report_path,
    write_edge_list, write_edge_list_path, IngestReport,
};
pub use kcore::CoreDecomposition;
pub use node::NodeId;
pub use ocg::{open_ocg_path, payload_checksum, read_ocg_info, verify_ocg_path, write_ocg_path};
pub use ocg::{OcgGraph, OcgInfo};
pub use ocg_build::{
    build_ocg_from_edges, build_ocg_from_emitter, build_ocg_from_path, BuildOptions, BuildStats,
};
pub use relabel::Relabeling;
pub use stats::GraphStats;
pub use subgraph::Subgraph;
pub use traversal::{ball, Bfs, Dfs};
pub use union_find::UnionFind;
