//! Plain-text edge-list input/output.
//!
//! Format: one `u v` pair per line, whitespace separated; `#`- or `%`-prefixed
//! lines are comments. This covers SNAP-style and Pajek-ish exports, which is
//! how graphs like the paper's Wikipedia snapshot are normally distributed.
//!
//! The path-based readers transparently decompress gzip input (detected by
//! magic bytes, so the extension does not matter) and annotate every error
//! with the offending file path. For graphs too large to build in RAM, the
//! same parser feeds the external-memory builder in [`crate::ocg_build`].

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// What edge-list ingestion saw: how many edge lines were parsed and how
/// many of them normalization dropped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Parsed (non-comment, non-blank) edge lines.
    pub edges_read: u64,
    /// Edges with `u == v`, dropped.
    pub self_loops: u64,
    /// Edges beyond the first occurrence of each undirected pair, dropped.
    pub duplicates: u64,
}

/// Streams every `(u, v)` pair of an edge list to `f`, in file order.
/// Returns the number of edge lines parsed. Shared by the in-RAM readers
/// below and the external-memory `.ocg` builder.
pub(crate) fn for_each_edge<R: BufRead>(
    mut reader: R,
    mut f: impl FnMut(u32, u32) -> Result<()>,
) -> Result<u64> {
    let mut line = String::new();
    let mut lineno = 0usize;
    let mut edges = 0u64;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let u = parse_field(it.next(), lineno)?;
        let v = parse_field(it.next(), lineno)?;
        edges += 1;
        f(u, v)?;
    }
    Ok(edges)
}

fn parse_field(field: Option<&str>, line: usize) -> Result<u32> {
    let field = field.ok_or_else(|| GraphError::Parse {
        line,
        message: "expected two node ids".into(),
    })?;
    field.parse::<u32>().map_err(|e| GraphError::Parse {
        line,
        message: format!("bad node id {field:?}: {e}"),
    })
}

/// Reads an edge list from any reader.
pub fn read_edge_list<R: Read>(reader: R) -> Result<CsrGraph> {
    read_edge_list_report(reader).map(|(g, _)| g)
}

/// Reads an edge list from any reader, also reporting how many edge lines
/// were parsed and how many self-loops/duplicates were dropped.
pub fn read_edge_list_report<R: Read>(reader: R) -> Result<(CsrGraph, IngestReport)> {
    let mut b = GraphBuilder::new_growable();
    let edges_read = for_each_edge(BufReader::new(reader), |u, v| {
        b.add_edge(u, v);
        Ok(())
    })?;
    let (graph, build) = b.try_build_report()?;
    Ok((
        graph,
        IngestReport {
            edges_read,
            self_loops: build.self_loops,
            duplicates: build.duplicates,
        },
    ))
}

/// Opens `path` for edge-list reading, transparently decompressing gzip
/// input (detected by the `1f 8b` magic bytes, not the file extension).
pub(crate) fn open_edge_list_reader(path: &Path) -> Result<Box<dyn BufRead>> {
    let mut reader = BufReader::new(std::fs::File::open(path)?);
    let is_gzip = {
        let head = reader.fill_buf()?;
        head.len() >= 2 && head[0] == 0x1f && head[1] == 0x8b
    };
    Ok(if is_gzip {
        Box::new(BufReader::new(crate::gzip::GzDecoder::new(reader)))
    } else {
        Box::new(reader)
    })
}

/// Reads an edge list from a file path (gzip detected automatically).
/// Errors are annotated with `path`.
pub fn read_edge_list_path<P: AsRef<Path>>(path: P) -> Result<CsrGraph> {
    read_edge_list_report_path(path).map(|(g, _)| g)
}

/// Reads an edge list with an [`IngestReport`] from a file path (gzip
/// detected automatically). Errors are annotated with `path`.
pub fn read_edge_list_report_path<P: AsRef<Path>>(path: P) -> Result<(CsrGraph, IngestReport)> {
    let path = path.as_ref();
    open_edge_list_reader(path)
        .and_then(read_edge_list_report)
        .map_err(|e| e.with_path(path))
}

/// Writes a graph as an edge list (`u v` per line, `u < v`).
pub fn write_edge_list<W: Write>(graph: &CsrGraph, writer: W) -> Result<()> {
    let mut w = std::io::BufWriter::new(writer);
    writeln!(
        w,
        "# undirected simple graph: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    )?;
    for (u, v) in graph.edges() {
        writeln!(w, "{} {}", u.raw(), v.raw())?;
    }
    w.flush()?;
    Ok(())
}

/// Writes a graph to a file path.
pub fn write_edge_list_path<P: AsRef<Path>>(graph: &CsrGraph, path: P) -> Result<()> {
    write_edge_list(graph, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    #[test]
    fn parses_basic_edge_list() {
        let text = "0 1\n1 2\n2 0\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = "# header\n% pajek style\n\n0 1\n\n# trailing\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn handles_tabs_and_extra_whitespace() {
        let text = "0\t1\n  1   2  \n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn reports_parse_errors_with_line_numbers() {
        let err = read_edge_list("0 1\nxyz 2\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");

        let err = read_edge_list("0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn ingest_report_counts_drops() {
        let text = "# six raw lines\n0 1\n1 0\n0 1\n2 2\n1 2\n3 3\n";
        let (g, report) = read_edge_list_report(text.as_bytes()).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(report.edges_read, 6);
        assert_eq!(report.self_loops, 2);
        assert_eq!(report.duplicates, 2);
    }

    #[test]
    fn empty_and_comment_only_inputs_build_empty_graphs() {
        let (g, report) = read_edge_list_report("".as_bytes()).unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(report, IngestReport::default());

        let (g, report) = read_edge_list_report("# nothing\n% here\n\n".as_bytes()).unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(report.edges_read, 0);
    }

    #[test]
    fn u32_boundary_ids_fail_with_typed_errors() {
        // Largest id that parses: u32::MAX. It implies 2^32 nodes, one
        // past the id space, so ingestion reports TooManyNodes rather
        // than silently mis-counting (and without allocating O(2^32)).
        let text = format!("0 {}\n", u32::MAX);
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::TooManyNodes { .. }), "{err}");

        // One past u32::MAX fails at parse time, with the line number.
        let text = format!("0 {}\n", u32::MAX as u64 + 1);
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn path_errors_carry_the_offending_path() {
        let dir = std::env::temp_dir().join(format!("oca_io_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        let missing = dir.join("does_not_exist.edges");
        let err = read_edge_list_path(&missing).unwrap_err();
        assert!(err.to_string().contains("does_not_exist.edges"), "{err}");

        let bad = dir.join("bad.edges");
        std::fs::write(&bad, "0 1\noops\n").unwrap();
        let err = read_edge_list_path(&bad).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("bad.edges"), "{msg}");
        assert!(msg.contains("line 2"), "{msg}");
        std::fs::remove_file(&bad).ok();
    }

    #[test]
    fn round_trip_preserves_graph() {
        let g = from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5), (5, 3)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn file_round_trip() {
        let g = from_edges(3, [(0, 2), (1, 2)]);
        let dir = std::env::temp_dir().join("oca_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.edges");
        write_edge_list_path(&g, &path).unwrap();
        let g2 = read_edge_list_path(&path).unwrap();
        assert_eq!(g, g2);
        std::fs::remove_file(path).ok();
    }
}
