//! Plain-text edge-list input/output.
//!
//! Format: one `u v` pair per line, whitespace separated; `#`- or `%`-prefixed
//! lines are comments. This covers SNAP-style and Pajek-ish exports, which is
//! how graphs like the paper's Wikipedia snapshot are normally distributed.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Reads an edge list from any reader.
pub fn read_edge_list<R: Read>(reader: R) -> Result<CsrGraph> {
    let mut b = GraphBuilder::new_growable();
    let mut buf = BufReader::new(reader);
    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        if buf.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let u = parse_field(it.next(), lineno)?;
        let v = parse_field(it.next(), lineno)?;
        b.add_edge(u, v);
    }
    Ok(b.build())
}

fn parse_field(field: Option<&str>, line: usize) -> Result<u32> {
    let field = field.ok_or_else(|| GraphError::Parse {
        line,
        message: "expected two node ids".into(),
    })?;
    field.parse::<u32>().map_err(|e| GraphError::Parse {
        line,
        message: format!("bad node id {field:?}: {e}"),
    })
}

/// Reads an edge list from a file path.
pub fn read_edge_list_path<P: AsRef<Path>>(path: P) -> Result<CsrGraph> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Writes a graph as an edge list (`u v` per line, `u < v`).
pub fn write_edge_list<W: Write>(graph: &CsrGraph, writer: W) -> Result<()> {
    let mut w = std::io::BufWriter::new(writer);
    writeln!(
        w,
        "# undirected simple graph: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    )?;
    for (u, v) in graph.edges() {
        writeln!(w, "{} {}", u.raw(), v.raw())?;
    }
    w.flush()?;
    Ok(())
}

/// Writes a graph to a file path.
pub fn write_edge_list_path<P: AsRef<Path>>(graph: &CsrGraph, path: P) -> Result<()> {
    write_edge_list(graph, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    #[test]
    fn parses_basic_edge_list() {
        let text = "0 1\n1 2\n2 0\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = "# header\n% pajek style\n\n0 1\n\n# trailing\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn handles_tabs_and_extra_whitespace() {
        let text = "0\t1\n  1   2  \n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn reports_parse_errors_with_line_numbers() {
        let err = read_edge_list("0 1\nxyz 2\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");

        let err = read_edge_list("0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn round_trip_preserves_graph() {
        let g = from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5), (5, 3)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn file_round_trip() {
        let g = from_edges(3, [(0, 2), (1, 2)]);
        let dir = std::env::temp_dir().join("oca_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.edges");
        write_edge_list_path(&g, &path).unwrap();
        let g2 = read_edge_list_path(&path).unwrap();
        assert_eq!(g, g2);
        std::fs::remove_file(path).ok();
    }
}
