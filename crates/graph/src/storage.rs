//! Storage backends for the CSR arrays: owned heap vectors or a read-only
//! memory-mapped file.
//!
//! [`crate::csr::CsrGraph`] does not own `Vec`s directly anymore; its
//! `offsets` and `neighbors` arrays live in [`U32Slab`]/[`NodeSlab`]s. A
//! slab is either an owned vector (every graph built in RAM) or a window
//! into a shared [`MappedFile`] (graphs opened from a `.ocg` file, see
//! [`crate::ocg`]). The accessors return plain slices either way, so every
//! consumer of `CsrGraph` — the ascent hot path included — is oblivious to
//! where the bytes physically live, and the mapped variant adds no
//! allocation and no per-access work beyond one predictable branch.
//!
//! ## Safety argument for the mapped variant
//!
//! The only `unsafe` in this crate lives here, in two places:
//!
//! 1. the `mmap(2)`/`munmap(2)` FFI (64-bit Unix only; other targets read
//!    the file into an aligned heap buffer instead), and
//! 2. reinterpreting the mapped bytes as `&[u32]` / `&[NodeId]`.
//!
//! Both are sound under the following conditions, all enforced at open
//! time by [`crate::ocg`]:
//!
//! * the mapping is `PROT_READ` + `MAP_PRIVATE`: nothing in this process
//!   can write through it, so shared `&[u32]` views cannot alias a
//!   mutation;
//! * every typed window is bounds-checked against the mapping length and
//!   4-byte aligned (the mapping is page-aligned and the `.ocg` header is
//!   64 bytes, so all array sections start on a 4-byte boundary);
//! * `NodeId` is `#[repr(transparent)]` over `u32`, and any `u32` bit
//!   pattern is a valid `NodeId`, so the reinterpretation cannot create
//!   an invalid value.
//!
//! What mmap cannot protect against is another *process* truncating the
//! file while it is mapped (reads would then fault). That is the standard
//! trust model of every mmap-based store: `.ocg` files are treated as
//! local, immutable build artifacts, the same way the binary cover files
//! already are.

use crate::node::NodeId;
use std::path::Path;
use std::sync::Arc;

/// A read-only byte store backing mapped slabs: an `mmap`ed file on 64-bit
/// Unix, an aligned heap copy of the file elsewhere.
#[derive(Debug)]
pub(crate) struct MappedFile {
    inner: raw::Mapping,
}

impl MappedFile {
    /// Maps (or, on targets without `mmap`, reads) `path` read-only.
    pub(crate) fn open(path: &Path) -> std::io::Result<MappedFile> {
        Ok(MappedFile {
            inner: raw::Mapping::open(path)?,
        })
    }

    /// Total length in bytes.
    pub(crate) fn byte_len(&self) -> usize {
        self.inner.byte_len()
    }

    /// The whole store as raw bytes.
    pub(crate) fn bytes(&self) -> &[u8] {
        self.inner.bytes()
    }

    /// A `count`-element `u32` window starting at `byte_start`.
    ///
    /// # Panics
    /// Panics when the window is out of bounds or misaligned; `.ocg`
    /// loading validates both before constructing slabs.
    pub(crate) fn u32s(&self, byte_start: usize, count: usize) -> &[u32] {
        self.inner.u32s(byte_start, count)
    }

    /// Like [`MappedFile::u32s`] but typed as node ids.
    pub(crate) fn node_ids(&self, byte_start: usize, count: usize) -> &[NodeId] {
        raw::u32s_as_node_ids(self.inner.u32s(byte_start, count))
    }
}

/// An `offsets`-style array: owned or a window of a shared mapping.
#[derive(Debug, Clone)]
pub(crate) enum U32Slab {
    /// Heap-allocated storage (graphs built in RAM).
    Owned(Vec<u32>),
    /// A window into a mapped `.ocg` file.
    Mapped {
        /// The shared mapping (one per open file, shared by both slabs).
        file: Arc<MappedFile>,
        /// First byte of the window inside the mapping.
        byte_start: usize,
        /// Window length in elements.
        len: usize,
    },
}

impl U32Slab {
    /// The backing array as a slice.
    #[inline]
    pub(crate) fn as_slice(&self) -> &[u32] {
        match self {
            U32Slab::Owned(v) => v,
            U32Slab::Mapped {
                file,
                byte_start,
                len,
            } => file.u32s(*byte_start, *len),
        }
    }
}

/// A `neighbors`-style array: owned or a window of a shared mapping.
#[derive(Debug, Clone)]
pub(crate) enum NodeSlab {
    /// Heap-allocated storage (graphs built in RAM).
    Owned(Vec<NodeId>),
    /// A window into a mapped `.ocg` file.
    Mapped {
        /// The shared mapping (one per open file, shared by both slabs).
        file: Arc<MappedFile>,
        /// First byte of the window inside the mapping.
        byte_start: usize,
        /// Window length in elements.
        len: usize,
    },
}

impl NodeSlab {
    /// The backing array as a slice.
    #[inline]
    pub(crate) fn as_slice(&self) -> &[NodeId] {
        match self {
            NodeSlab::Owned(v) => v,
            NodeSlab::Mapped {
                file,
                byte_start,
                len,
            } => file.node_ids(*byte_start, *len),
        }
    }
}

/// The unsafe core: the mapping itself and the byte→`u32` reinterpretation.
/// Everything outside this module is safe code over the slices it hands
/// out; the module docs carry the soundness argument.
mod raw {
    #![allow(unsafe_code)]

    use crate::node::NodeId;
    #[cfg(not(all(unix, target_pointer_width = "64")))]
    use std::io::Read;
    use std::path::Path;

    /// Backing storage: a real mapping where available, an aligned heap
    /// buffer elsewhere (or for empty files, which `mmap` rejects).
    #[derive(Debug)]
    pub(super) enum Mapping {
        #[cfg(all(unix, target_pointer_width = "64"))]
        Mmap { ptr: *const u8, len: usize },
        /// `Vec<u32>` rather than `Vec<u8>` so the buffer is 4-byte
        /// aligned and the typed views below stay valid.
        Heap { words: Vec<u32>, len: usize },
    }

    // SAFETY: the mapping is created PROT_READ/MAP_PRIVATE and never
    // written through; it behaves as an immutable byte slice for its whole
    // lifetime, which is exactly the contract `Send`/`Sync` need.
    #[cfg(all(unix, target_pointer_width = "64"))]
    unsafe impl Send for Mapping {}
    // SAFETY: as above — shared read-only access to immutable memory.
    #[cfg(all(unix, target_pointer_width = "64"))]
    unsafe impl Sync for Mapping {}

    #[cfg(all(unix, target_pointer_width = "64"))]
    mod sys {
        use std::os::raw::{c_int, c_void};

        pub const PROT_READ: c_int = 1;
        pub const MAP_PRIVATE: c_int = 2;

        extern "C" {
            pub fn mmap(
                addr: *mut c_void,
                len: usize,
                prot: c_int,
                flags: c_int,
                fd: c_int,
                offset: i64,
            ) -> *mut c_void;
            pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        }
    }

    impl Mapping {
        #[cfg(all(unix, target_pointer_width = "64"))]
        pub(super) fn open(path: &Path) -> std::io::Result<Mapping> {
            use std::os::unix::io::AsRawFd;
            let file = std::fs::File::open(path)?;
            let len = file.metadata()?.len();
            if len > usize::MAX as u64 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "file too large to map",
                ));
            }
            let len = len as usize;
            if len == 0 {
                return Ok(Mapping::Heap {
                    words: Vec::new(),
                    len: 0,
                });
            }
            // SAFETY: fd is a valid open file descriptor for `len` bytes;
            // we request a fresh read-only private mapping (addr = null,
            // offset = 0) and check for MAP_FAILED. The file handle may be
            // dropped afterwards: the mapping keeps its own reference to
            // the underlying object.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(Mapping::Mmap {
                ptr: ptr as *const u8,
                len,
            })
        }

        #[cfg(not(all(unix, target_pointer_width = "64")))]
        pub(super) fn open(path: &Path) -> std::io::Result<Mapping> {
            let mut file = std::fs::File::open(path)?;
            let mut bytes = Vec::new();
            file.read_to_end(&mut bytes)?;
            Ok(Self::from_bytes(&bytes))
        }

        /// Copies raw bytes into an aligned heap buffer (fallback targets
        /// and tests).
        #[cfg_attr(all(unix, target_pointer_width = "64"), allow(dead_code))]
        pub(super) fn from_bytes(bytes: &[u8]) -> Mapping {
            let len = bytes.len();
            let mut words = vec![0u32; len.div_ceil(4)];
            // SAFETY: `words` owns at least `len` bytes of 4-byte-aligned
            // storage; u32 has no invalid bit patterns, so writing raw
            // bytes into it is fine.
            let dst = unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr() as *mut u8, len) };
            dst.copy_from_slice(bytes);
            Mapping::Heap { words, len }
        }

        pub(super) fn byte_len(&self) -> usize {
            match self {
                #[cfg(all(unix, target_pointer_width = "64"))]
                Mapping::Mmap { len, .. } => *len,
                Mapping::Heap { len, .. } => *len,
            }
        }

        pub(super) fn bytes(&self) -> &[u8] {
            match self {
                #[cfg(all(unix, target_pointer_width = "64"))]
                Mapping::Mmap { ptr, len } => {
                    // SAFETY: ptr/len describe a live PROT_READ mapping
                    // owned by self; the borrow cannot outlive the mapping.
                    unsafe { std::slice::from_raw_parts(*ptr, *len) }
                }
                Mapping::Heap { words, len } => {
                    // SAFETY: `words` owns at least `len` bytes; any u32 is
                    // a valid byte source.
                    unsafe { std::slice::from_raw_parts(words.as_ptr() as *const u8, *len) }
                }
            }
        }

        #[inline]
        pub(super) fn u32s(&self, byte_start: usize, count: usize) -> &[u32] {
            let bytes = self.bytes();
            let byte_len = count.checked_mul(4).expect("u32 window overflows");
            let end = byte_start.checked_add(byte_len).expect("window overflows");
            assert!(end <= bytes.len(), "u32 window out of bounds");
            let ptr = bytes[byte_start..].as_ptr();
            assert_eq!(ptr as usize % 4, 0, "u32 window misaligned");
            // SAFETY: bounds and 4-byte alignment checked just above; the
            // memory is immutable for the lifetime of the borrow and every
            // bit pattern is a valid u32. Reads are little-endian on every
            // supported target (the `.ocg` format is LE; see crate::ocg).
            unsafe { std::slice::from_raw_parts(ptr as *const u32, count) }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            #[cfg(all(unix, target_pointer_width = "64"))]
            if let Mapping::Mmap { ptr, len } = self {
                // SAFETY: ptr/len came from a successful mmap and are
                // unmapped exactly once, here.
                unsafe {
                    sys::munmap(*ptr as *mut std::os::raw::c_void, *len);
                }
            }
        }
    }

    /// Reinterprets a `u32` slice as node ids.
    #[inline]
    pub(super) fn u32s_as_node_ids(words: &[u32]) -> &[NodeId] {
        // SAFETY: NodeId is #[repr(transparent)] over u32, so the slices
        // have identical layout and every u32 is a valid NodeId.
        unsafe { std::slice::from_raw_parts(words.as_ptr() as *const NodeId, words.len()) }
    }

    #[cfg(test)]
    pub(super) fn heap_mapping_from_bytes(bytes: &[u8]) -> Mapping {
        Mapping::from_bytes(bytes)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn heap_mapping_round_trips_bytes_and_words() {
            let mut bytes = Vec::new();
            for w in [1u32, 0xdead_beef, 42] {
                bytes.extend_from_slice(&w.to_le_bytes());
            }
            bytes.push(7); // trailing partial word
            let m = heap_mapping_from_bytes(&bytes);
            assert_eq!(m.byte_len(), 13);
            assert_eq!(m.bytes(), &bytes[..]);
            assert_eq!(m.u32s(0, 3), &[1, 0xdead_beef, 42]);
            assert_eq!(m.u32s(4, 2), &[0xdead_beef, 42]);
        }

        #[test]
        #[should_panic(expected = "out of bounds")]
        fn out_of_bounds_window_panics() {
            let m = heap_mapping_from_bytes(&[0u8; 8]);
            m.u32s(4, 2);
        }

        #[test]
        #[should_panic(expected = "misaligned")]
        fn misaligned_window_panics() {
            let m = heap_mapping_from_bytes(&[0u8; 12]);
            m.u32s(2, 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapped_file_over_a_real_file() {
        let dir = std::env::temp_dir().join(format!("oca_storage_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("words.bin");
        let mut bytes = Vec::new();
        for w in 0u32..64 {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        std::fs::write(&path, &bytes).unwrap();
        let map = MappedFile::open(&path).unwrap();
        assert_eq!(map.byte_len(), 256);
        assert_eq!(map.bytes()[..4], [0, 0, 0, 0]);
        assert_eq!(map.u32s(0, 64)[63], 63);
        assert_eq!(map.node_ids(16, 2), &[NodeId(4), NodeId(5)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_store() {
        let dir = std::env::temp_dir().join(format!("oca_storage_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        std::fs::write(&path, b"").unwrap();
        let map = MappedFile::open(&path).unwrap();
        assert_eq!(map.byte_len(), 0);
        assert!(map.bytes().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn slabs_expose_owned_and_mapped_storage_identically() {
        let owned = U32Slab::Owned(vec![0, 2, 4]);
        assert_eq!(owned.as_slice(), &[0, 2, 4]);
        let nodes = NodeSlab::Owned(vec![NodeId(1), NodeId(0)]);
        assert_eq!(nodes.as_slice(), &[NodeId(1), NodeId(0)]);

        let dir = std::env::temp_dir().join(format!("oca_storage_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("slab.bin");
        let mut bytes = Vec::new();
        for w in [0u32, 2, 4, 1, 0] {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        std::fs::write(&path, &bytes).unwrap();
        let file = Arc::new(MappedFile::open(&path).unwrap());
        let mapped = U32Slab::Mapped {
            file: Arc::clone(&file),
            byte_start: 0,
            len: 3,
        };
        assert_eq!(mapped.as_slice(), owned.as_slice());
        let mapped_nodes = NodeSlab::Mapped {
            file,
            byte_start: 12,
            len: 2,
        };
        assert_eq!(mapped_nodes.as_slice(), nodes.as_slice());
        std::fs::remove_file(&path).ok();
    }
}
