//! Minimal streaming gzip (RFC 1952) / DEFLATE (RFC 1951) decompression.
//!
//! Real-world edge lists (SNAP, KONECT, the paper's Wikipedia snapshot)
//! ship gzip-compressed; the vendored dependency policy rules out `flate2`,
//! so this module implements the decoder from the RFCs: stored, fixed- and
//! dynamic-Huffman blocks, the 32 KiB LZ77 window, multi-member streams,
//! and CRC32/ISIZE trailer verification.
//!
//! [`GzDecoder`] implements [`Read`] and decompresses incrementally — a
//! bounded window plus a small output buffer — so piping a multi-gigabyte
//! `.txt.gz` edge list into the external-memory `.ocg` builder keeps its
//! bounded-memory guarantee. Throughput is secondary (a simple canonical
//! Huffman bit-by-bit decoder, no multi-bit lookup tables); ingestion cost
//! is dominated by integer parsing and the sort passes downstream.

use std::collections::VecDeque;
use std::io::{BufRead, Error, ErrorKind, Read, Result};

const WINDOW: usize = 32 * 1024;
/// Decode at most this far ahead of the reader per `read` call.
const OUT_TARGET: usize = 16 * 1024;

fn bad(message: &str) -> Error {
    Error::new(ErrorKind::InvalidData, format!("gzip: {message}"))
}

fn truncated() -> Error {
    Error::new(ErrorKind::UnexpectedEof, "gzip: truncated stream")
}

// ---------------------------------------------------------------- crc32

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

#[derive(Debug, Clone, Copy)]
struct Crc32(u32);

impl Crc32 {
    fn new() -> Self {
        Crc32(0xffff_ffff)
    }

    fn update(&mut self, byte: u8) {
        self.0 = CRC_TABLE[((self.0 ^ byte as u32) & 0xff) as usize] ^ (self.0 >> 8);
    }

    fn finish(&self) -> u32 {
        self.0 ^ 0xffff_ffff
    }
}

// ------------------------------------------------------------- bit input

#[derive(Debug)]
struct Bits<R> {
    inner: R,
    buf: u32,
    count: u32,
}

impl<R: BufRead> Bits<R> {
    fn new(inner: R) -> Self {
        Bits {
            inner,
            buf: 0,
            count: 0,
        }
    }

    /// Pulls one byte from the underlying reader (the bit buffer must be
    /// empty or aligned; used for headers, trailers and stored blocks).
    fn read_byte(&mut self) -> Result<u8> {
        debug_assert_eq!(self.count % 8, 0);
        if self.count >= 8 {
            let b = (self.buf & 0xff) as u8;
            self.buf >>= 8;
            self.count -= 8;
            return Ok(b);
        }
        let mut byte = [0u8; 1];
        match self.inner.read_exact(&mut byte) {
            Ok(()) => Ok(byte[0]),
            Err(e) if e.kind() == ErrorKind::UnexpectedEof => Err(truncated()),
            Err(e) => Err(e),
        }
    }

    /// True when the underlying stream (and bit buffer) is exhausted.
    fn at_eof(&mut self) -> Result<bool> {
        Ok(self.count == 0 && self.inner.fill_buf()?.is_empty())
    }

    fn read_bit(&mut self) -> Result<u32> {
        if self.count == 0 {
            let mut byte = [0u8; 1];
            match self.inner.read_exact(&mut byte) {
                Ok(()) => {}
                Err(e) if e.kind() == ErrorKind::UnexpectedEof => return Err(truncated()),
                Err(e) => return Err(e),
            }
            self.buf = byte[0] as u32;
            self.count = 8;
        }
        let bit = self.buf & 1;
        self.buf >>= 1;
        self.count -= 1;
        Ok(bit)
    }

    /// Reads `n ≤ 16` bits, LSB first (DEFLATE's packing order).
    fn read_bits(&mut self, n: u32) -> Result<u32> {
        debug_assert!(n <= 16);
        let mut value = 0u32;
        for i in 0..n {
            value |= self.read_bit()? << i;
        }
        Ok(value)
    }

    /// Discards bits up to the next byte boundary.
    fn align(&mut self) {
        let drop = self.count % 8;
        self.buf >>= drop;
        self.count -= drop;
    }
}

// ------------------------------------------------------ canonical huffman

/// A canonical Huffman decoder: per-length first code / symbol ranges
/// (RFC 1951 §3.2.2), walked bit by bit.
#[derive(Debug, Clone)]
struct Huffman {
    count: [u16; 16],
    first: [u32; 16],
    base: [u32; 16],
    syms: Vec<u16>,
}

impl Huffman {
    fn build(lengths: &[u8]) -> Result<Huffman> {
        let mut count = [0u16; 16];
        for &len in lengths {
            if len > 15 {
                return Err(bad("code length exceeds 15"));
            }
            count[len as usize] += 1;
        }
        // Length 0 means "symbol unused" — it must not shift the canonical
        // code assignment below.
        count[0] = 0;
        // Over-subscribed codes are invalid; incomplete ones only matter
        // if the stream actually walks into the gap (caught in decode).
        let mut left = 1i32;
        for &c in &count[1..] {
            left = (left << 1) - c as i32;
            if left < 0 {
                return Err(bad("over-subscribed huffman code"));
            }
        }
        let mut first = [0u32; 16];
        let mut base = [0u32; 16];
        let mut code = 0u32;
        let mut index = 0u32;
        for len in 1..16 {
            code = (code + count[len - 1] as u32) << 1;
            first[len] = code;
            base[len] = index;
            index += count[len] as u32;
        }
        let mut offsets = base;
        let mut syms = vec![0u16; lengths.iter().filter(|&&l| l != 0).count()];
        for (sym, &len) in lengths.iter().enumerate() {
            if len != 0 {
                syms[offsets[len as usize] as usize] = sym as u16;
                offsets[len as usize] += 1;
            }
        }
        Ok(Huffman {
            count,
            first,
            base,
            syms,
        })
    }

    fn decode<R: BufRead>(&self, bits: &mut Bits<R>) -> Result<u16> {
        let mut code = 0u32;
        for len in 1..16 {
            code |= bits.read_bit()?;
            let n = self.count[len] as u32;
            if n != 0 && code >= self.first[len] && code < self.first[len] + n {
                return Ok(self.syms[(self.base[len] + code - self.first[len]) as usize]);
            }
            code <<= 1;
        }
        Err(bad("invalid huffman code"))
    }
}

fn fixed_literal_tree() -> Huffman {
    let mut lengths = [0u8; 288];
    lengths[..144].fill(8);
    lengths[144..256].fill(9);
    lengths[256..280].fill(7);
    lengths[280..].fill(8);
    Huffman::build(&lengths).expect("fixed literal tree is well-formed")
}

fn fixed_distance_tree() -> Huffman {
    Huffman::build(&[5u8; 30]).expect("fixed distance tree is well-formed")
}

const LENGTH_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
const LENGTH_EXTRA: [u8; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];
/// Order in which code-length-code lengths are stored (RFC 1951 §3.2.7).
const CLEN_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

// --------------------------------------------------------------- decoder

// One `State` lives per decoder, so the size gap between `Huffman` (two
// decode tables) and the unit variants costs nothing; boxing the tables
// would add a pointer chase to every decoded symbol.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum State {
    /// Expecting a gzip member header (or clean EOF after ≥ 1 member).
    MemberHeader,
    /// Expecting a DEFLATE block header.
    BlockHeader,
    /// Inside a stored block with `remaining` bytes to copy.
    Stored {
        remaining: u16,
    },
    /// Inside a Huffman-coded block.
    Huffman {
        lit: Huffman,
        dist: Huffman,
    },
    /// Expecting the CRC32/ISIZE member trailer.
    Trailer,
    Done,
}

/// Streaming gzip decompressor over any buffered reader.
///
/// Handles everything the format allows in the wild: stored and both
/// Huffman block types, optional header fields, and concatenated members.
/// The CRC32 and length trailers of every member are verified, so a
/// truncated or corrupted download fails loudly instead of producing a
/// silently short edge list.
#[derive(Debug)]
pub struct GzDecoder<R: BufRead> {
    bits: Bits<R>,
    state: State,
    /// Set once the final block of the current member is being processed.
    final_block: bool,
    /// Ring buffer of the last 32 KiB of output (LZ77 back-references).
    window: Box<[u8; WINDOW]>,
    /// Total bytes emitted in the current member (mod 2³² for ISIZE).
    emitted: u64,
    crc: Crc32,
    members: u32,
    /// Decoded bytes not yet handed to the caller.
    out: VecDeque<u8>,
}

impl<R: BufRead> GzDecoder<R> {
    /// Wraps a buffered reader positioned at the start of a gzip stream.
    pub fn new(inner: R) -> Self {
        GzDecoder {
            bits: Bits::new(inner),
            state: State::MemberHeader,
            final_block: false,
            window: Box::new([0u8; WINDOW]),
            emitted: 0,
            crc: Crc32::new(),
            members: 0,
            out: VecDeque::new(),
        }
    }

    fn emit(&mut self, byte: u8) {
        self.window[(self.emitted % WINDOW as u64) as usize] = byte;
        self.emitted += 1;
        self.crc.update(byte);
        self.out.push_back(byte);
    }

    fn back_ref(&self, distance: usize) -> Result<u8> {
        if distance as u64 > self.emitted.min(WINDOW as u64) {
            return Err(bad("back-reference before start of output"));
        }
        let idx = (self.emitted + WINDOW as u64 - distance as u64) % WINDOW as u64;
        Ok(self.window[idx as usize])
    }

    fn read_member_header(&mut self) -> Result<()> {
        let id1 = self.bits.read_byte()?;
        let id2 = self.bits.read_byte()?;
        if id1 != 0x1f || id2 != 0x8b {
            return Err(bad("bad magic bytes"));
        }
        if self.bits.read_byte()? != 8 {
            return Err(bad("unsupported compression method (want deflate)"));
        }
        let flags = self.bits.read_byte()?;
        if flags & 0xe0 != 0 {
            return Err(bad("reserved header flag bits set"));
        }
        for _ in 0..6 {
            self.bits.read_byte()?; // MTIME, XFL, OS
        }
        if flags & 0x04 != 0 {
            // FEXTRA: u16 length + payload.
            let lo = self.bits.read_byte()? as u16;
            let hi = self.bits.read_byte()? as u16;
            for _ in 0..(hi << 8 | lo) {
                self.bits.read_byte()?;
            }
        }
        for flag in [0x08u8, 0x10] {
            // FNAME / FCOMMENT: zero-terminated strings.
            if flags & flag != 0 {
                while self.bits.read_byte()? != 0 {}
            }
        }
        if flags & 0x02 != 0 {
            self.bits.read_byte()?; // FHCRC
            self.bits.read_byte()?;
        }
        self.crc = Crc32::new();
        self.emitted = 0;
        self.final_block = false;
        Ok(())
    }

    fn read_block_header(&mut self) -> Result<State> {
        self.final_block = self.bits.read_bit()? == 1;
        match self.bits.read_bits(2)? {
            0 => {
                self.bits.align();
                let len = self.bits.read_bits(16)? as u16;
                let nlen = self.bits.read_bits(16)? as u16;
                if len != !nlen {
                    return Err(bad("stored block length check failed"));
                }
                Ok(State::Stored { remaining: len })
            }
            1 => Ok(State::Huffman {
                lit: fixed_literal_tree(),
                dist: fixed_distance_tree(),
            }),
            2 => {
                let (lit, dist) = self.read_dynamic_trees()?;
                Ok(State::Huffman { lit, dist })
            }
            _ => Err(bad("reserved block type")),
        }
    }

    fn read_dynamic_trees(&mut self) -> Result<(Huffman, Huffman)> {
        let hlit = self.bits.read_bits(5)? as usize + 257;
        let hdist = self.bits.read_bits(5)? as usize + 1;
        let hclen = self.bits.read_bits(4)? as usize + 4;
        let mut clen_lengths = [0u8; 19];
        for &slot in CLEN_ORDER.iter().take(hclen) {
            clen_lengths[slot] = self.bits.read_bits(3)? as u8;
        }
        let clen_tree = Huffman::build(&clen_lengths)?;
        let mut lengths = vec![0u8; hlit + hdist];
        let mut i = 0;
        while i < lengths.len() {
            match clen_tree.decode(&mut self.bits)? {
                sym @ 0..=15 => {
                    lengths[i] = sym as u8;
                    i += 1;
                }
                16 => {
                    if i == 0 {
                        return Err(bad("repeat with no previous code length"));
                    }
                    let prev = lengths[i - 1];
                    let reps = 3 + self.bits.read_bits(2)? as usize;
                    if i + reps > lengths.len() {
                        return Err(bad("code length repeat overflows"));
                    }
                    lengths[i..i + reps].fill(prev);
                    i += reps;
                }
                17 => {
                    let reps = 3 + self.bits.read_bits(3)? as usize;
                    if i + reps > lengths.len() {
                        return Err(bad("code length repeat overflows"));
                    }
                    i += reps;
                }
                18 => {
                    let reps = 11 + self.bits.read_bits(7)? as usize;
                    if i + reps > lengths.len() {
                        return Err(bad("code length repeat overflows"));
                    }
                    i += reps;
                }
                _ => return Err(bad("invalid code length symbol")),
            }
        }
        let lit = Huffman::build(&lengths[..hlit])?;
        let dist = Huffman::build(&lengths[hlit..])?;
        Ok((lit, dist))
    }

    fn read_trailer(&mut self) -> Result<()> {
        self.bits.align();
        let mut trailer = [0u8; 8];
        for slot in &mut trailer {
            *slot = self.bits.read_byte()?;
        }
        let crc = u32::from_le_bytes(trailer[..4].try_into().unwrap());
        let isize = u32::from_le_bytes(trailer[4..].try_into().unwrap());
        if crc != self.crc.finish() {
            return Err(bad("CRC32 mismatch"));
        }
        if isize != self.emitted as u32 {
            return Err(bad("uncompressed length (ISIZE) mismatch"));
        }
        self.members += 1;
        Ok(())
    }

    /// Runs the state machine until `out` holds at least `OUT_TARGET`
    /// bytes, the member needs a state change, or the stream ends.
    fn decode_some(&mut self) -> Result<()> {
        while self.out.len() < OUT_TARGET {
            match &self.state {
                State::Done => return Ok(()),
                State::MemberHeader => {
                    if self.members > 0 && self.bits.at_eof()? {
                        self.state = State::Done;
                        return Ok(());
                    }
                    self.read_member_header()?;
                    self.state = State::BlockHeader;
                }
                State::BlockHeader => {
                    self.state = self.read_block_header()?;
                }
                State::Stored { remaining } => {
                    let mut remaining = *remaining;
                    while remaining > 0 && self.out.len() < OUT_TARGET {
                        let byte = self.bits.read_byte()?;
                        self.emit(byte);
                        remaining -= 1;
                    }
                    self.state = if remaining > 0 {
                        State::Stored { remaining }
                    } else if self.final_block {
                        State::Trailer
                    } else {
                        State::BlockHeader
                    };
                }
                State::Huffman { lit, dist } => {
                    // The trees move out of `state` for the symbol loop so
                    // `self` stays borrowable; they move back unless the
                    // block ends.
                    let (lit, dist) = (lit.clone(), dist.clone());
                    let mut block_done = false;
                    while self.out.len() < OUT_TARGET {
                        let sym = lit.decode(&mut self.bits)?;
                        match sym {
                            0..=255 => self.emit(sym as u8),
                            256 => {
                                block_done = true;
                                break;
                            }
                            257..=285 => {
                                let idx = sym as usize - 257;
                                let length = LENGTH_BASE[idx] as usize
                                    + self.bits.read_bits(LENGTH_EXTRA[idx] as u32)? as usize;
                                let dsym = dist.decode(&mut self.bits)? as usize;
                                if dsym >= 30 {
                                    return Err(bad("invalid distance symbol"));
                                }
                                let distance = DIST_BASE[dsym] as usize
                                    + self.bits.read_bits(DIST_EXTRA[dsym] as u32)? as usize;
                                for _ in 0..length {
                                    let byte = self.back_ref(distance)?;
                                    self.emit(byte);
                                }
                            }
                            _ => return Err(bad("invalid literal/length symbol")),
                        }
                    }
                    if block_done {
                        self.state = if self.final_block {
                            State::Trailer
                        } else {
                            State::BlockHeader
                        };
                    } else {
                        self.state = State::Huffman { lit, dist };
                    }
                }
                State::Trailer => {
                    self.read_trailer()?;
                    self.state = State::MemberHeader;
                }
            }
        }
        Ok(())
    }
}

impl<R: BufRead> Read for GzDecoder<R> {
    fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        if self.out.is_empty() {
            self.decode_some()?;
        }
        let n = buf.len().min(self.out.len());
        for slot in buf.iter_mut().take(n) {
            *slot = self.out.pop_front().expect("counted above");
        }
        Ok(n)
    }
}

/// Decompresses a complete gzip byte slice (convenience for tests and
/// small inputs; large streams should use [`GzDecoder`] directly).
pub fn gunzip(bytes: &[u8]) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    GzDecoder::new(bytes).read_to_end(&mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference vectors generated with CPython's zlib (gzip.compress with
    // mtime=0); each is (compressed bytes, expected plaintext).

    /// `gzip.compress(b"hello hello hello hello\n", 9, mtime=0)`
    const HELLO: &[u8] = &[
        0x1f, 0x8b, 0x08, 0x00, 0x00, 0x00, 0x00, 0x00, 0x02, 0x03, 0xcb, 0x48, 0xcd, 0xc9, 0xc9,
        0x57, 0xc8, 0x40, 0x27, 0xb9, 0x00, 0x00, 0x88, 0x59, 0x0b, 0x18, 0x00, 0x00, 0x00,
    ];
    const HELLO_PLAIN: &[u8] = b"hello hello hello hello\n";

    /// `gzip.compress(b"0 1\n1 2\n2 0\n", 0, mtime=0)` — stored blocks.
    const STORED: &[u8] = &[
        0x1f, 0x8b, 0x08, 0x00, 0x00, 0x00, 0x00, 0x00, 0x04, 0x03, 0x01, 0x0c, 0x00, 0xf3, 0xff,
        0x30, 0x20, 0x31, 0x0a, 0x31, 0x20, 0x32, 0x0a, 0x32, 0x20, 0x30, 0x0a, 0x7b, 0x61, 0x5b,
        0x23, 0x0c, 0x00, 0x00, 0x00,
    ];
    const STORED_PLAIN: &[u8] = b"0 1\n1 2\n2 0\n";

    /// `gzip.compress(plain, 9, mtime=0)` where `plain` is the 200-line
    /// edge list `"\n".join(f"{i} {i*7%97}" for i in range(200)) + "\n"` —
    /// long enough that zlib emits a dynamic-Huffman block.
    const DYNAMIC: &[u8] = &[
        0x1f, 0x8b, 0x08, 0x00, 0x00, 0x00, 0x00, 0x00, 0x02, 0x03, 0x25, 0xd4, 0xbb, 0x81, 0x05,
        0x21, 0x0c, 0x43, 0xd1, 0x5c, 0x55, 0xa8, 0x84, 0x11, 0xe6, 0x63, 0xfa, 0x6f, 0x6c, 0x2f,
        0x6f, 0x13, 0x65, 0x0c, 0x83, 0x75, 0xe0, 0xf3, 0xa7, 0xf8, 0x68, 0x38, 0x53, 0xe5, 0x11,
        0x4d, 0x8f, 0xd6, 0x72, 0x2d, 0x6d, 0xcf, 0xa1, 0xe3, 0x79, 0xd5, 0x5e, 0x5b, 0xd7, 0xbb,
        0x94, 0xcf, 0x87, 0x15, 0x2c, 0x39, 0xca, 0x70, 0x4f, 0xa5, 0x7c, 0xa3, 0x4c, 0x13, 0xcb,
        0xad, 0x6c, 0x67, 0x29, 0xc7, 0x63, 0x28, 0xed, 0x71, 0x95, 0xeb, 0xda, 0x1a, 0x9f, 0x67,
        0x69, 0xc4, 0xeb, 0xd3, 0x18, 0x5e, 0xec, 0x59, 0xde, 0x53, 0x63, 0xfa, 0x44, 0x63, 0xf9,
        0xb4, 0xc6, 0x76, 0x2f, 0x8d, 0xe3, 0x3b, 0x34, 0x58, 0xab, 0x71, 0x7d, 0x55, 0x9f, 0xb3,
        0x55, 0xf1, 0x28, 0xd5, 0x70, 0x7d, 0xaa, 0x72, 0x1d, 0xd5, 0xf4, 0xe4, 0xa7, 0x97, 0x57,
        0x54, 0xdb, 0xab, 0x55, 0xc7, 0x7b, 0xa9, 0xda, 0x67, 0xa8, 0xae, 0xcf, 0xd5, 0xfc, 0xdc,
        0x5b, 0x33, 0xbe, 0xa5, 0xc9, 0x5a, 0xcd, 0x72, 0x3e, 0x4d, 0x7e, 0xf7, 0x68, 0x2e, 0x8f,
        0xa9, 0xb9, 0x5d, 0x1c, 0xfb, 0xb8, 0x5a, 0xb3, 0x3d, 0x97, 0xe6, 0xf5, 0x1a, 0x5a, 0x9f,
        0xd7, 0xd5, 0x8a, 0xf7, 0xd6, 0x1a, 0x3e, 0xa5, 0x55, 0xee, 0x4f, 0x6b, 0xba, 0x8f, 0xd6,
        0xf2, 0x9d, 0x5a, 0xcc, 0x48, 0xeb, 0x38, 0xd1, 0x6a, 0x87, 0xc1, 0x5d, 0x0f, 0x26, 0xf7,
        0xb9, 0x86, 0x76, 0x5c, 0x57, 0x7b, 0x78, 0x6e, 0xed, 0xf2, 0x2a, 0xed, 0xe9, 0xfd, 0x69,
        0x2f, 0xef, 0xa3, 0xbd, 0x7d, 0xa6, 0xf6, 0x71, 0x47, 0xbb, 0xdd, 0xad, 0xcd, 0x61, 0x97,
        0x0e, 0xdb, 0xea, 0xc4, 0x61, 0xf6, 0xb4, 0x72, 0x75, 0xa8, 0x65, 0xeb, 0x4c, 0x57, 0xe9,
        0x2c, 0xcf, 0x4f, 0x87, 0x5d, 0x8f, 0xce, 0xf1, 0x9a, 0x3a, 0xed, 0x1d, 0x1d, 0xca, 0x69,
        0x35, 0xe5, 0x2c, 0x75, 0xdc, 0x43, 0x4d, 0x39, 0x14, 0x47, 0x39, 0x5b, 0xcd, 0xb6, 0xea,
        0xe5, 0x94, 0x7a, 0x7b, 0x7c, 0x6a, 0xda, 0x39, 0xea, 0x76, 0x4d, 0xf5, 0xf5, 0x8c, 0x2e,
        0xed, 0xb4, 0x2e, 0xed, 0x2c, 0xdd, 0xe1, 0x3d, 0x74, 0x69, 0xe7, 0xea, 0xd2, 0x0e, 0xd5,
        0x53, 0x6c, 0xe9, 0x6e, 0xdf, 0x4f, 0xf7, 0x40, 0xe6, 0x32, 0x62, 0xdd, 0xfb, 0xd0, 0xe4,
        0xfb, 0x1e, 0x9b, 0x7c, 0x79, 0x70, 0xf2, 0x8d, 0x47, 0x27, 0x5f, 0x3d, 0x3c, 0xf9, 0xe6,
        0xe3, 0x93, 0x6f, 0x3d, 0x40, 0xf9, 0xf6, 0x3f, 0xa1, 0xf3, 0x33, 0xf4, 0xf5, 0x0f, 0xd1,
        0x77, 0x7f, 0x8a, 0x80, 0xf5, 0x18, 0x21, 0xeb, 0xe5, 0x78, 0x90, 0x90, 0xf5, 0x24, 0x41,
        0xeb, 0x51, 0x02, 0xd7, 0xb3, 0x04, 0x2f, 0x30, 0x05, 0x5f, 0x68, 0x0a, 0xc0, 0xd6, 0xe3,
        0x78, 0x9f, 0xa7, 0x40, 0x0c, 0x50, 0xc1, 0x18, 0xa2, 0x02, 0x32, 0x48, 0x05, 0x65, 0x98,
        0x0a, 0xcc, 0x40, 0x15, 0x9c, 0xbd, 0xe4, 0x24, 0xe4, 0x79, 0xae, 0xf2, 0xa0, 0xf1, 0x29,
        0xa8, 0x21, 0x2b, 0x60, 0x83, 0x56, 0xd0, 0x36, 0x9f, 0xed, 0xf1, 0x70, 0x05, 0x6f, 0xe8,
        0x0a, 0xe0, 0xe0, 0x15, 0xc4, 0xe1, 0x2b, 0x90, 0x03, 0x58, 0x30, 0x87, 0xb0, 0x80, 0x0e,
        0x62, 0x41, 0x1d, 0x89, 0x3a, 0x90, 0x05, 0x76, 0x28, 0x0b, 0xee, 0x60, 0x16, 0xe4, 0xd5,
        0xbb, 0x28, 0xf3, 0x41, 0x0b, 0xf6, 0x90, 0x16, 0xf0, 0x41, 0x2d, 0xe8, 0xc3, 0x5a, 0xe0,
        0x07, 0xb6, 0xe0, 0x0f, 0x6d, 0x01, 0x20, 0xdc, 0x82, 0x40, 0xbc, 0x05, 0x82, 0x80, 0x0b,
        0x06, 0x5f, 0xce, 0x47, 0x2e, 0x20, 0xc4, 0x5c, 0x50, 0x08, 0xba, 0xe0, 0x10, 0x75, 0x01,
        0x22, 0xec, 0x82, 0x44, 0xdc, 0x05, 0x8a, 0xc0, 0x0b, 0x16, 0x91, 0x17, 0x30, 0x42, 0x2f,
        0x68, 0xc4, 0x5e, 0xe0, 0x08, 0xbe, 0xe0, 0xb1, 0xdf, 0xbd, 0xdd, 0x8f, 0x5f, 0x10, 0xf9,
        0xb2, 0x1f, 0xc0, 0x40, 0x12, 0x81, 0xc1, 0x24, 0x04, 0x83, 0x4a, 0x0c, 0x06, 0x96, 0x20,
        0x0c, 0x2e, 0x51, 0x18, 0x60, 0xc2, 0x30, 0xc8, 0xc4, 0x61, 0xa0, 0x09, 0xc4, 0x60, 0xf3,
        0xbc, 0x47, 0xa0, 0x1f, 0xc5, 0xa0, 0x13, 0x8b, 0x81, 0x27, 0x18, 0x83, 0xcf, 0x97, 0xe3,
        0x71, 0x0c, 0x40, 0xf1, 0x18, 0x84, 0x02, 0x32, 0x18, 0x45, 0x64, 0x40, 0x0a, 0xc9, 0xa0,
        0x14, 0x93, 0x81, 0x29, 0x28, 0x83, 0x53, 0x54, 0x06, 0xa8, 0xfb, 0x3d, 0x29, 0x79, 0x2e,
        0x03, 0x55, 0x60, 0x06, 0xab, 0xc8, 0x0c, 0x58, 0x5f, 0x52, 0x0f, 0xb9, 0x7f, 0x38, 0xd1,
        0xfa, 0x70, 0xe2, 0xf5, 0xe1, 0x44, 0x2c, 0x38, 0xff, 0x00, 0xb4, 0x1d, 0x7c, 0x1b, 0xf4,
        0x04, 0x00, 0x00,
    ];

    fn dynamic_plain() -> Vec<u8> {
        let mut s = String::new();
        for i in 0..200u32 {
            s.push_str(&format!("{} {}\n", i, i * 7 % 97));
        }
        s.into_bytes()
    }

    #[test]
    fn decodes_fixed_huffman_member() {
        assert_eq!(gunzip(HELLO).unwrap(), HELLO_PLAIN);
    }

    #[test]
    fn decodes_stored_member() {
        assert_eq!(gunzip(STORED).unwrap(), STORED_PLAIN);
    }

    #[test]
    fn decodes_dynamic_huffman_member() {
        assert_eq!(gunzip(DYNAMIC).unwrap(), dynamic_plain());
    }

    #[test]
    fn decodes_concatenated_members() {
        let mut both = HELLO.to_vec();
        both.extend_from_slice(STORED);
        let mut expected = HELLO_PLAIN.to_vec();
        expected.extend_from_slice(STORED_PLAIN);
        assert_eq!(gunzip(&both).unwrap(), expected);
    }

    #[test]
    fn rejects_corrupted_payload() {
        let mut bytes = HELLO.to_vec();
        bytes[12] ^= 0x40;
        assert!(gunzip(&bytes).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let bytes = &HELLO[..HELLO.len() - 6];
        let err = gunzip(bytes).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::UnexpectedEof);
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(gunzip(b"plainly not gzip").is_err());
    }

    #[test]
    fn small_reads_stream_correctly() {
        let mut dec = GzDecoder::new(HELLO);
        let mut out = Vec::new();
        let mut byte = [0u8; 1];
        loop {
            match dec.read(&mut byte).unwrap() {
                0 => break,
                _ => out.push(byte[0]),
            }
        }
        assert_eq!(out, HELLO_PLAIN);
    }
}
