//! Connected components.

use crate::csr::CsrGraph;
use crate::node::NodeId;
use crate::union_find::UnionFind;

/// The connected-component decomposition of a graph.
#[derive(Debug, Clone)]
pub struct Components {
    /// Dense component label per node.
    labels: Vec<u32>,
    /// Number of components.
    count: usize,
}

impl Components {
    /// Computes connected components with union–find (`O(m α(n))`).
    pub fn compute(graph: &CsrGraph) -> Self {
        let mut uf = UnionFind::new(graph.node_count());
        for (u, v) in graph.edges() {
            uf.union(u.index(), v.index());
        }
        let labels = uf.labels();
        Components {
            count: uf.set_count(),
            labels,
        }
    }

    /// Number of components.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Component label of `v`.
    pub fn label(&self, v: NodeId) -> u32 {
        self.labels[v.index()]
    }

    /// True if `u` and `v` share a component.
    pub fn same_component(&self, u: NodeId, v: NodeId) -> bool {
        self.label(u) == self.label(v)
    }

    /// Size of each component, indexed by label.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &l in &self.labels {
            sizes[l as usize] += 1;
        }
        sizes
    }

    /// Members of each component, indexed by label.
    pub fn members(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.count];
        for (i, &l) in self.labels.iter().enumerate() {
            out[l as usize].push(NodeId(i as u32));
        }
        out
    }

    /// Label and members of the largest component (ties broken by label).
    pub fn largest(&self) -> Option<(u32, Vec<NodeId>)> {
        if self.count == 0 {
            return None;
        }
        let sizes = self.sizes();
        let best = (0..self.count).max_by_key(|&i| sizes[i]).unwrap() as u32;
        let members = self
            .labels
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == best)
            .map(|(i, _)| NodeId(i as u32))
            .collect();
        Some((best, members))
    }
}

/// True if every pair of nodes is connected (vacuously true for n ≤ 1).
pub fn is_connected(graph: &CsrGraph) -> bool {
    graph.node_count() <= 1 || Components::compute(graph).count() == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    #[test]
    fn two_components_plus_isolate() {
        let g = from_edges(6, [(0, 1), (1, 2), (3, 4)]);
        let c = Components::compute(&g);
        assert_eq!(c.count(), 3);
        assert!(c.same_component(NodeId(0), NodeId(2)));
        assert!(!c.same_component(NodeId(0), NodeId(3)));
        let mut sizes = c.sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2, 3]);
    }

    #[test]
    fn largest_component() {
        let g = from_edges(6, [(0, 1), (1, 2), (3, 4)]);
        let c = Components::compute(&g);
        let (_, members) = c.largest().unwrap();
        let raw: Vec<_> = members.iter().map(|v| v.raw()).collect();
        assert_eq!(raw, vec![0, 1, 2]);
    }

    #[test]
    fn members_partition_nodes() {
        let g = from_edges(5, [(0, 4), (1, 2)]);
        let c = Components::compute(&g);
        let members = c.members();
        let total: usize = members.iter().map(|m| m.len()).sum();
        assert_eq!(total, 5);
        assert_eq!(members.len(), c.count());
    }

    #[test]
    fn connectivity_checks() {
        assert!(is_connected(&from_edges(3, [(0, 1), (1, 2)])));
        assert!(!is_connected(&from_edges(3, [(0, 1)])));
        assert!(is_connected(&CsrGraph::empty(0)));
        assert!(is_connected(&CsrGraph::empty(1)));
        assert!(!is_connected(&CsrGraph::empty(2)));
    }

    use crate::csr::CsrGraph;
}
