//! Text serialization of covers (one community per line).
//!
//! Format: whitespace-separated node ids, one community per line, `#`
//! comments. This is the de-facto interchange format of community-detection
//! tools (CFinder, the LFR reference implementation and igraph all emit
//! variants of it), so results can be compared against external tooling.

use crate::community::{Community, Cover};
use crate::error::{GraphError, Result};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Writes a cover, one community per line.
pub fn write_cover<W: Write>(cover: &Cover, writer: W) -> Result<()> {
    let mut w = std::io::BufWriter::new(writer);
    writeln!(
        w,
        "# cover: {} communities over {} nodes",
        cover.len(),
        cover.node_count()
    )?;
    for c in cover.communities() {
        let ids: Vec<String> = c.members().iter().map(|v| v.raw().to_string()).collect();
        writeln!(w, "{}", ids.join(" "))?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a cover over `node_count` nodes.
pub fn read_cover<R: Read>(node_count: usize, reader: R) -> Result<Cover> {
    let mut buf = BufReader::new(reader);
    let mut line = String::new();
    let mut lineno = 0usize;
    let mut communities = Vec::new();
    loop {
        line.clear();
        if buf.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut ids = Vec::new();
        for token in trimmed.split_whitespace() {
            let id: u32 = token.parse().map_err(|e| GraphError::Parse {
                line: lineno,
                message: format!("bad node id {token:?}: {e}"),
            })?;
            if id as usize >= node_count {
                return Err(GraphError::NodeOutOfBounds {
                    node: id,
                    node_count: node_count as u32,
                });
            }
            ids.push(id);
        }
        communities.push(Community::from_raw(ids));
    }
    Ok(Cover::new(node_count, communities))
}

/// Writes a cover to a file path.
pub fn write_cover_path<P: AsRef<Path>>(cover: &Cover, path: P) -> Result<()> {
    write_cover(cover, std::fs::File::create(path)?)
}

/// Reads a cover from a file path.
pub fn read_cover_path<P: AsRef<Path>>(node_count: usize, path: P) -> Result<Cover> {
    read_cover(node_count, std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Cover {
        Cover::new(
            8,
            vec![
                Community::from_raw([0, 1, 2, 3]),
                Community::from_raw([3, 4, 5]),
                Community::from_raw([6]),
            ],
        )
    }

    #[test]
    fn round_trip() {
        let cover = sample();
        let mut buf = Vec::new();
        write_cover(&cover, &mut buf).unwrap();
        let back = read_cover(8, buf.as_slice()).unwrap();
        assert_eq!(cover, back);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = "# header\n\n0 1 2\n# mid\n3 4\n";
        let cover = read_cover(5, text.as_bytes()).unwrap();
        assert_eq!(cover.len(), 2);
    }

    #[test]
    fn rejects_out_of_range_ids() {
        let err = read_cover(3, "0 1 7\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("out of bounds"));
    }

    #[test]
    fn rejects_garbage() {
        let err = read_cover(3, "0 x\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("oca_cover_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cover.txt");
        let cover = sample();
        write_cover_path(&cover, &path).unwrap();
        assert_eq!(read_cover_path(8, &path).unwrap(), cover);
        std::fs::remove_file(path).ok();
    }
}
