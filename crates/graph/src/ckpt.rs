//! The `.ockpt` checkpoint container: a versioned, checksummed envelope
//! for driver resume state.
//!
//! A long detection run periodically persists its round-boundary state so
//! a crash (SIGKILL, OOM, preemption) loses at most the rounds since the
//! last write. This module owns only the *container*: an 8-byte magic, a
//! version, two caller-supplied binding checksums (config and graph — so a
//! stale file is refused instead of silently resuming the wrong run), an
//! opaque payload, and a trailing FNV-1a checksum over everything before
//! it. The payload encoding itself belongs to the driver (`oca::runner`);
//! this layer guarantees that whatever comes back out of
//! [`read_ckpt_path`] is byte-for-byte what went into [`write_ckpt_path`],
//! or a typed [`CkptError`] explaining why not.
//!
//! Writes go through [`crate::atomic_write_path`], so a crash mid-write
//! leaves the previous complete checkpoint in place — never a torn file.
//!
//! ## Layout (all integers little-endian)
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"OCACKPT\0"
//!      8     4  version (currently 1)
//!     12     4  reserved (zero)
//!     16     8  config checksum (caller-defined binding)
//!     24     8  graph checksum  (caller-defined binding)
//!     32     8  payload length in bytes
//!     40     n  payload (opaque to this layer)
//!   40+n     8  FNV-1a checksum of bytes [0, 40+n)
//! ```

use crate::atomic::atomic_write_path;
use crate::ocg::Fnv1a;
use std::fmt;
use std::path::Path;

/// Magic bytes opening every `.ockpt` file.
pub const OCKPT_MAGIC: [u8; 8] = *b"OCACKPT\0";
/// The container version this build reads and writes.
pub const OCKPT_VERSION: u32 = 1;
/// Fixed header size: magic + version + reserved + two bindings + length.
const HEADER_LEN: usize = 40;
/// Trailing checksum size.
const TRAILER_LEN: usize = 8;

/// Why a checkpoint could not be read or does not apply to this run.
///
/// The split matters operationally: [`is_corruption`](CkptError::is_corruption)
/// classes (a damaged or half-deleted file) can safely be discarded and
/// the run restarted from scratch, while mismatch classes signal operator
/// error — resuming a *different* run's checkpoint — and should abort.
#[derive(Debug)]
pub enum CkptError {
    /// An underlying I/O failure (including file-not-found).
    Io(std::io::Error),
    /// The file does not start with the `.ockpt` magic bytes.
    BadMagic,
    /// The file records a container version this build does not read.
    UnsupportedVersion(u32),
    /// The file is shorter than its header and length field imply.
    Truncated,
    /// The trailing checksum does not match the file contents.
    ChecksumMismatch,
    /// A binding checksum (config or graph) does not match the current
    /// run; constructed by the resume layer, not by this module.
    Mismatch {
        /// Which binding disagreed (`"config"` or `"graph"`).
        what: &'static str,
        /// The checksum recorded in the file.
        expected: u64,
        /// The checksum of the current run.
        found: u64,
    },
    /// The payload decoded to something structurally impossible;
    /// constructed by the resume layer, not by this module.
    Malformed(String),
}

impl CkptError {
    /// True for damage classes (truncation, checksum failure): the file
    /// can be discarded and the run restarted. False for mismatches and
    /// version/magic surprises, which signal operator error instead.
    pub fn is_corruption(&self) -> bool {
        matches!(self, CkptError::Truncated | CkptError::ChecksumMismatch)
    }
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "i/o error: {e}"),
            CkptError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CkptError::UnsupportedVersion(v) => write!(
                f,
                "unsupported checkpoint version {v} (this build reads version {OCKPT_VERSION})"
            ),
            CkptError::Truncated => write!(f, "checkpoint file is truncated"),
            CkptError::ChecksumMismatch => write!(f, "checkpoint checksum mismatch"),
            CkptError::Mismatch {
                what,
                expected,
                found,
            } => write!(
                f,
                "checkpoint {what} mismatch: file records {expected:#018x}, \
                 this run has {found:#018x}"
            ),
            CkptError::Malformed(message) => write!(f, "malformed checkpoint: {message}"),
        }
    }
}

impl std::error::Error for CkptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CkptError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e)
    }
}

/// A checkpoint as the container layer sees it: two binding checksums and
/// an opaque payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CkptEnvelope {
    /// Binds the file to the run's configuration (schedule-affecting
    /// fields only; the writer decides what to hash).
    pub config_checksum: u64,
    /// Binds the file to the graph it was computed on.
    pub graph_checksum: u64,
    /// The driver's serialized state, opaque here.
    pub payload: Vec<u8>,
}

/// Serializes `envelope` into the full on-disk byte layout.
pub fn encode_ckpt(envelope: &CkptEnvelope) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + envelope.payload.len() + TRAILER_LEN);
    out.extend_from_slice(&OCKPT_MAGIC);
    out.extend_from_slice(&OCKPT_VERSION.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    out.extend_from_slice(&envelope.config_checksum.to_le_bytes());
    out.extend_from_slice(&envelope.graph_checksum.to_le_bytes());
    out.extend_from_slice(&(envelope.payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&envelope.payload);
    let mut fnv = Fnv1a::new();
    fnv.update(&out);
    out.extend_from_slice(&fnv.finish().to_le_bytes());
    out
}

/// Parses and verifies the full on-disk byte layout back into an envelope.
pub fn decode_ckpt(bytes: &[u8]) -> Result<CkptEnvelope, CkptError> {
    if bytes.len() < HEADER_LEN + TRAILER_LEN {
        // Too short to even hold a header; if the magic is already wrong,
        // say that instead (a text file piped in, not a torn checkpoint).
        if bytes.len() >= 8 && bytes[..8] != OCKPT_MAGIC {
            return Err(CkptError::BadMagic);
        }
        return Err(CkptError::Truncated);
    }
    if bytes[..8] != OCKPT_MAGIC {
        return Err(CkptError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != OCKPT_VERSION {
        return Err(CkptError::UnsupportedVersion(version));
    }
    let config_checksum = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    let graph_checksum = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
    let payload_len = u64::from_le_bytes(bytes[32..40].try_into().unwrap());
    let expected_len = (HEADER_LEN as u64)
        .checked_add(payload_len)
        .and_then(|n| n.checked_add(TRAILER_LEN as u64))
        .ok_or(CkptError::Truncated)?;
    if (bytes.len() as u64) < expected_len {
        return Err(CkptError::Truncated);
    }
    if (bytes.len() as u64) > expected_len {
        // Trailing garbage after the checksum: not a clean file. The
        // atomic writer never produces this, so treat it as damage.
        return Err(CkptError::ChecksumMismatch);
    }
    let body = &bytes[..bytes.len() - TRAILER_LEN];
    let recorded = u64::from_le_bytes(bytes[bytes.len() - TRAILER_LEN..].try_into().unwrap());
    let mut fnv = Fnv1a::new();
    fnv.update(body);
    if fnv.finish() != recorded {
        return Err(CkptError::ChecksumMismatch);
    }
    Ok(CkptEnvelope {
        config_checksum,
        graph_checksum,
        payload: bytes[HEADER_LEN..HEADER_LEN + payload_len as usize].to_vec(),
    })
}

/// Atomically writes `envelope` to `path` (temp file + fsync + rename),
/// returning the total bytes written. The previous checkpoint at `path`
/// survives intact if anything fails mid-write.
pub fn write_ckpt_path(path: &Path, envelope: &CkptEnvelope) -> std::io::Result<u64> {
    let bytes = encode_ckpt(envelope);
    atomic_write_path(path, |w| std::io::Write::write_all(w, &bytes))?;
    Ok(bytes.len() as u64)
}

/// Reads and verifies the checkpoint at `path`. Every failure is typed:
/// missing file and I/O errors surface as [`CkptError::Io`], damage as
/// the corruption classes, foreign files as magic/version errors.
pub fn read_ckpt_path(path: &Path) -> Result<CkptEnvelope, CkptError> {
    let bytes = std::fs::read(path)?;
    decode_ckpt(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

    fn tmpdir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "oca_ckpt_test_{}_{}",
            std::process::id(),
            DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> CkptEnvelope {
        CkptEnvelope {
            config_checksum: 0xDEAD_BEEF_0BAD_F00D,
            graph_checksum: 0x1234_5678_9ABC_DEF0,
            payload: (0..=255u8).collect(),
        }
    }

    #[test]
    fn round_trips_through_disk() {
        let dir = tmpdir();
        let path = dir.join("run.ockpt");
        let env = sample();
        let bytes = write_ckpt_path(&path, &env).unwrap();
        assert_eq!(bytes, std::fs::metadata(&path).unwrap().len());
        assert_eq!(read_ckpt_path(&path).unwrap(), env);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_payload_round_trips() {
        let env = CkptEnvelope {
            config_checksum: 1,
            graph_checksum: 2,
            payload: Vec::new(),
        };
        assert_eq!(decode_ckpt(&encode_ckpt(&env)).unwrap(), env);
    }

    #[test]
    fn missing_file_is_io_not_corruption() {
        let err = read_ckpt_path(Path::new("/nonexistent/nope.ockpt")).unwrap_err();
        assert!(matches!(err, CkptError::Io(_)));
        assert!(!err.is_corruption());
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = encode_ckpt(&sample());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                decode_ckpt(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncation_at_every_length_is_typed() {
        let bytes = encode_ckpt(&sample());
        for len in 0..bytes.len() {
            let err = decode_ckpt(&bytes[..len]).unwrap_err();
            assert!(
                matches!(err, CkptError::Truncated | CkptError::BadMagic),
                "truncation to {len} bytes gave {err:?}"
            );
            if len >= 8 {
                // Once the magic is intact, the verdict is truncation.
                assert!(matches!(err, CkptError::Truncated), "at {len}: {err:?}");
                assert!(err.is_corruption());
            }
        }
    }

    #[test]
    fn trailing_garbage_is_damage() {
        let mut bytes = encode_ckpt(&sample());
        bytes.extend_from_slice(b"junk");
        assert!(matches!(
            decode_ckpt(&bytes).unwrap_err(),
            CkptError::ChecksumMismatch
        ));
    }

    #[test]
    fn foreign_magic_and_version_are_not_corruption() {
        let mut bad = encode_ckpt(&sample());
        bad[..8].copy_from_slice(b"OCACOVER");
        let err = decode_ckpt(&bad).unwrap_err();
        assert!(matches!(err, CkptError::BadMagic));
        assert!(!err.is_corruption());

        let mut future = encode_ckpt(&sample());
        future[8..12].copy_from_slice(&99u32.to_le_bytes());
        // Re-seal so only the version differs from a valid file.
        let trailer_at = future.len() - 8;
        let mut fnv = Fnv1a::new();
        fnv.update(&future[..trailer_at]);
        let checksum = fnv.finish();
        future[trailer_at..].copy_from_slice(&checksum.to_le_bytes());
        let err = decode_ckpt(&future).unwrap_err();
        assert!(matches!(err, CkptError::UnsupportedVersion(99)));
        assert!(!err.is_corruption());
    }

    #[test]
    fn display_messages_name_the_problem() {
        assert!(CkptError::Truncated.to_string().contains("truncated"));
        assert!(CkptError::BadMagic.to_string().contains("magic"));
        assert!(CkptError::UnsupportedVersion(7).to_string().contains('7'));
        let m = CkptError::Mismatch {
            what: "graph",
            expected: 0xAB,
            found: 0xCD,
        }
        .to_string();
        assert!(m.contains("graph") && m.contains("0x"), "{m}");
        assert!(CkptError::Malformed("bad length".into())
            .to_string()
            .contains("bad length"));
    }

    #[test]
    fn replacing_a_checkpoint_is_atomic_over_the_old_one() {
        let dir = tmpdir();
        let path = dir.join("run.ockpt");
        let first = sample();
        write_ckpt_path(&path, &first).unwrap();
        let second = CkptEnvelope {
            payload: vec![9; 10_000],
            ..first.clone()
        };
        write_ckpt_path(&path, &second).unwrap();
        assert_eq!(read_ckpt_path(&path).unwrap(), second);
        // No temp debris left behind.
        let debris: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(debris.is_empty(), "{debris:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
