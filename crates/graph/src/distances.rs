//! BFS distances, eccentricity and diameter estimation.

use crate::csr::CsrGraph;
use crate::node::NodeId;
use std::collections::VecDeque;

/// Distance value for unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

/// Single-source BFS distances; unreachable nodes get [`UNREACHABLE`].
pub fn bfs_distances(graph: &CsrGraph, source: NodeId) -> Vec<u32> {
    let n = graph.node_count();
    let mut dist = vec![UNREACHABLE; n];
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()];
        for &u in graph.neighbors(v) {
            if dist[u.index()] == UNREACHABLE {
                dist[u.index()] = dv + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Eccentricity of a node within its component (max finite distance).
pub fn eccentricity(graph: &CsrGraph, v: NodeId) -> u32 {
    bfs_distances(graph, v)
        .into_iter()
        .filter(|&d| d != UNREACHABLE)
        .max()
        .unwrap_or(0)
}

/// Lower-bounds the diameter with the standard double-sweep heuristic:
/// BFS from `start`, then BFS from the farthest node found. Exact on trees.
pub fn double_sweep_diameter(graph: &CsrGraph, start: NodeId) -> u32 {
    if graph.node_count() == 0 {
        return 0;
    }
    let first = bfs_distances(graph, start);
    let far = first
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d != UNREACHABLE)
        .max_by_key(|&(_, &d)| d)
        .map(|(i, _)| NodeId(i as u32))
        .unwrap_or(start);
    eccentricity(graph, far)
}

/// Average shortest-path length over reachable pairs from a sample of
/// `sources` (exact when `sources` covers all nodes).
pub fn average_distance_sampled(graph: &CsrGraph, sources: &[NodeId]) -> f64 {
    let mut total = 0u64;
    let mut pairs = 0u64;
    for &s in sources {
        for d in bfs_distances(graph, s) {
            if d != UNREACHABLE && d > 0 {
                total += d as u64;
                pairs += 1;
            }
        }
    }
    if pairs == 0 {
        0.0
    } else {
        total as f64 / pairs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    #[test]
    fn path_distances() {
        let g = from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        assert_eq!(eccentricity(&g, NodeId(2)), 2);
        assert_eq!(eccentricity(&g, NodeId(0)), 4);
    }

    #[test]
    fn unreachable_marked() {
        let g = from_edges(4, [(0, 1), (2, 3)]);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
        assert_eq!(eccentricity(&g, NodeId(0)), 1);
    }

    #[test]
    fn double_sweep_exact_on_path() {
        let g = from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        // Start mid-path; the sweep still finds the true diameter 5.
        assert_eq!(double_sweep_diameter(&g, NodeId(2)), 5);
    }

    #[test]
    fn double_sweep_on_cycle() {
        let g = from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        assert_eq!(double_sweep_diameter(&g, NodeId(0)), 3);
    }

    #[test]
    fn average_distance_on_triangle() {
        let g = from_edges(3, [(0, 1), (1, 2), (0, 2)]);
        let all: Vec<NodeId> = g.nodes().collect();
        assert!((average_distance_sampled(&g, &all) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_is_safe() {
        let g = crate::csr::CsrGraph::empty(0);
        assert_eq!(double_sweep_diameter(&g, NodeId(0)), 0);
        assert_eq!(average_distance_sampled(&g, &[]), 0.0);
    }
}
