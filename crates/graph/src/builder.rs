//! Incremental construction of [`CsrGraph`]s.
//!
//! The builder accepts edges in any order, with duplicates and self-loops,
//! and normalizes to a simple undirected graph. Construction is
//! counting-sort based (`O(n + m)`), not comparison-sort based, so building
//! the 10⁸-edge graphs of the paper's Table I stays linear.

use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};
use crate::node::NodeId;
use crate::relabel::Relabeling;

/// What normalization dropped while building a graph: counts of self-loops
/// and duplicate edges in the raw input. Surfaced by
/// [`GraphBuilder::try_build_report`] and the edge-list ingestion paths so
/// CLI users can see how much of their input was discarded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuildReport {
    /// Raw edges with `u == v`, dropped during normalization.
    pub self_loops: u64,
    /// Raw edges beyond the first occurrence of each undirected pair.
    pub duplicates: u64,
}

/// Builds a [`CsrGraph`] from an edge stream.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    node_count: usize,
    /// Undirected edges as given; normalized at build time.
    edges: Vec<(u32, u32)>,
}

impl GraphBuilder {
    /// A builder for a graph with `node_count` nodes (ids `0..node_count`).
    ///
    /// # Panics
    /// Panics when `node_count` exceeds the `u32` id space; use
    /// [`GraphBuilder::try_new`] for a typed error instead.
    pub fn new(node_count: usize) -> Self {
        match GraphBuilder::try_new(node_count) {
            Ok(b) => b,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible counterpart of [`GraphBuilder::new`]: rejects node counts
    /// beyond the `u32` id space with [`GraphError::TooManyNodes`].
    pub fn try_new(node_count: usize) -> Result<Self> {
        if node_count > u32::MAX as usize {
            return Err(GraphError::TooManyNodes {
                requested: node_count,
            });
        }
        Ok(GraphBuilder {
            node_count,
            edges: Vec::new(),
        })
    }

    /// A builder that will grow its node count to fit the edges it sees.
    pub fn new_growable() -> Self {
        GraphBuilder::new(0)
    }

    /// Pre-allocates for `m` edges.
    pub fn with_edge_capacity(mut self, m: usize) -> Self {
        self.edges.reserve(m);
        self
    }

    /// Number of nodes the built graph will have.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of raw (possibly duplicate) edges added so far.
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `{u, v}`, growing the node count if needed.
    /// Self-loops are accepted here and dropped at build time.
    #[inline]
    pub fn add_edge(&mut self, u: u32, v: u32) {
        let hi = u.max(v) as usize + 1;
        if hi > self.node_count {
            self.node_count = hi;
        }
        self.edges.push((u, v));
    }

    /// Adds `{u, v}` only if both endpoints are within the fixed node count.
    pub fn try_add_edge(&mut self, u: u32, v: u32) -> Result<()> {
        let n = self.node_count as u32;
        for x in [u, v] {
            if x >= n {
                return Err(GraphError::NodeOutOfBounds {
                    node: x,
                    node_count: n,
                });
            }
        }
        self.edges.push((u, v));
        Ok(())
    }

    /// Adds all edges from an iterator.
    pub fn extend_edges<I: IntoIterator<Item = (u32, u32)>>(&mut self, iter: I) {
        for (u, v) in iter {
            self.add_edge(u, v);
        }
    }

    /// Normalizes (drops self-loops, deduplicates, symmetrizes, sorts rows)
    /// and produces the CSR graph.
    ///
    /// # Panics
    /// Panics when the directed adjacency exceeds the compact CSR's `u32`
    /// offset space; use [`GraphBuilder::try_build`] for a typed error.
    pub fn build(self) -> CsrGraph {
        match self.try_build() {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible counterpart of [`GraphBuilder::build`]: rejects edge sets
    /// whose directed adjacency (2 entries per undirected edge, before
    /// deduplication) overflows the `u32` offsets of [`CsrGraph`] with
    /// [`GraphError::TooManyEdges`].
    pub fn try_build(self) -> Result<CsrGraph> {
        self.try_build_report().map(|(g, _)| g)
    }

    /// Like [`GraphBuilder::try_build`], also returning a [`BuildReport`]
    /// with the self-loop and duplicate counts normalization dropped.
    pub fn try_build_report(self) -> Result<(CsrGraph, BuildReport)> {
        let n = self.node_count;
        // The growable path can push node_count past the u32 id space
        // without going through `try_new` — fail here, before the O(n)
        // allocations below.
        if n > u32::MAX as usize {
            return Err(GraphError::TooManyNodes { requested: n });
        }
        if self.edges.len() > (u32::MAX / 2) as usize {
            return Err(GraphError::TooManyEdges {
                requested: self.edges.len(),
            });
        }
        let mut report = BuildReport::default();
        // Pass 1: count directed degree (both directions per edge).
        let mut counts = vec![0u32; n + 1];
        for &(u, v) in &self.edges {
            if u == v {
                report.self_loops += 1;
                continue;
            }
            counts[u as usize + 1] += 1;
            counts[v as usize + 1] += 1;
        }
        // Prefix-sum into offsets.
        let mut offsets = counts;
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        // Pass 2: scatter neighbors.
        let mut cursor = offsets.clone();
        let mut neighbors = vec![NodeId(0); *offsets.last().unwrap() as usize];
        for &(u, v) in &self.edges {
            if u == v {
                continue;
            }
            neighbors[cursor[u as usize] as usize] = NodeId(v);
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize] as usize] = NodeId(u);
            cursor[v as usize] += 1;
        }
        drop(cursor);
        // Pass 3: sort rows and deduplicate in place.
        let directed_total = *offsets.last().unwrap() as usize;
        let mut write = 0usize;
        let mut new_offsets = Vec::with_capacity(n + 1);
        new_offsets.push(0u32);
        let mut read_start = 0usize;
        for i in 0..n {
            let read_end = offsets[i + 1] as usize;
            let row = &mut neighbors[read_start..read_end];
            row.sort_unstable();
            let mut prev: Option<NodeId> = None;
            let mut w = write;
            for k in read_start..read_end {
                let v = neighbors[k];
                if prev != Some(v) {
                    neighbors[w] = v;
                    w += 1;
                    prev = Some(v);
                }
            }
            write = w;
            read_start = read_end;
            new_offsets.push(write as u32);
        }
        neighbors.truncate(write);
        // Each duplicate undirected edge contributed two directed entries
        // that pass 3's dedup discarded.
        report.duplicates = ((directed_total - write) / 2) as u64;
        Ok((CsrGraph::from_parts(new_offsets, neighbors), report))
    }

    /// Like [`GraphBuilder::build`], followed by a degree-ordered
    /// relabeling pass: the returned graph numbers nodes by descending
    /// degree (hub rows first — see [`Relabeling::degree_descending`] for
    /// why that helps the ascent's cache behavior), and the returned
    /// [`Relabeling`] maps its ids back to the builder's original ids, so
    /// communities found on the compact graph can be reported in original
    /// ids via [`Relabeling::cover_to_original`].
    pub fn build_degree_ordered(self) -> (CsrGraph, Relabeling) {
        let g = self.build();
        let relabeling = Relabeling::degree_descending(&g);
        (g.relabeled(&relabeling), relabeling)
    }
}

/// Builds a graph directly from `(u, v)` pairs, growing to fit.
pub fn from_edges<I: IntoIterator<Item = (u32, u32)>>(node_count: usize, edges: I) -> CsrGraph {
    let mut b = GraphBuilder::new(node_count);
    b.extend_edges(edges);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_graph() {
        let g = from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn drops_self_loops_and_duplicates() {
        let g = from_edges(3, [(0, 1), (1, 0), (0, 1), (2, 2), (1, 2)]);
        assert_eq!(g.edge_count(), 2);
        assert!(!g.has_edge(NodeId(2), NodeId(2)));
        assert_eq!(g.neighbors(NodeId(1)), &[NodeId(0), NodeId(2)]);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn growable_builder_expands() {
        let mut b = GraphBuilder::new_growable();
        b.add_edge(5, 2);
        assert_eq!(b.node_count(), 6);
        let g = b.build();
        assert_eq!(g.node_count(), 6);
        assert!(g.has_edge(NodeId(5), NodeId(2)));
    }

    #[test]
    fn try_add_edge_bounds_check() {
        let mut b = GraphBuilder::new(3);
        assert!(b.try_add_edge(0, 2).is_ok());
        let err = b.try_add_edge(0, 3).unwrap_err();
        assert!(err.to_string().contains("out of bounds"));
    }

    #[test]
    fn try_new_rejects_oversized_graphs() {
        assert!(GraphBuilder::try_new(u32::MAX as usize).is_ok());
        let err = GraphBuilder::try_new(u32::MAX as usize + 1).unwrap_err();
        assert!(err.to_string().contains("2^32"));
    }

    #[test]
    fn build_empty() {
        let g = GraphBuilder::new(0).build();
        assert!(g.is_empty());
        let g = GraphBuilder::new(7).build();
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn extend_edges_and_capacity() {
        let mut b = GraphBuilder::new(10).with_edge_capacity(3);
        b.extend_edges([(0, 1), (2, 3), (4, 5)]);
        assert_eq!(b.raw_edge_count(), 3);
        let g = b.build();
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn build_degree_ordered_relabels_hubs_first() {
        // Node 2 is the hub (degree 3); 0 and 3 have degree 2; 1 and 4
        // have degree 1 (duplicates and the self-loop are normalized away
        // before degrees are taken).
        let mut b = GraphBuilder::new(5);
        b.extend_edges([(0, 2), (2, 3), (2, 4), (0, 3), (0, 3), (1, 1), (1, 0)]);
        let (g, relabeling) = b.build_degree_ordered();
        assert!(g.validate().is_ok());
        assert_eq!(g.edge_count(), 5);
        // Degrees are non-increasing along the new ids, hub first.
        assert_eq!(relabeling.to_original(NodeId(0)), NodeId(0), "degree 3");
        for v in 1..g.node_count() as u32 {
            assert!(g.degree(NodeId(v)) <= g.degree(NodeId(v - 1)));
        }
        // The permutation round-trips, and mapping the hub's compact row
        // back recovers its original neighborhood.
        for v in 0..g.node_count() as u32 {
            let v = NodeId(v);
            assert_eq!(relabeling.to_compact(relabeling.to_original(v)), v);
        }
        let mut hub_row: Vec<u32> = g
            .neighbors(NodeId(0))
            .iter()
            .map(|&u| relabeling.to_original(u).raw())
            .collect();
        hub_row.sort_unstable();
        assert_eq!(hub_row, vec![1, 2, 3], "original neighbors of node 0");
    }

    #[test]
    fn build_report_counts_self_loops_and_duplicates() {
        let mut b = GraphBuilder::new(3);
        // 2 self-loops; {0,1} appears 3 times (2 duplicates, once reversed);
        // {1,2} appears once.
        b.extend_edges([(0, 1), (1, 0), (0, 1), (2, 2), (1, 2), (0, 0)]);
        let (g, report) = b.try_build_report().unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(report.self_loops, 2);
        assert_eq!(report.duplicates, 2);
    }

    #[test]
    fn clean_input_reports_zero_drops() {
        let mut b = GraphBuilder::new(3);
        b.extend_edges([(0, 1), (1, 2)]);
        let (_, report) = b.try_build_report().unwrap();
        assert_eq!(report, BuildReport::default());
    }

    #[test]
    fn growable_builder_rejects_u32_boundary_ids_before_allocating() {
        // An edge touching id u32::MAX needs 2^32 nodes, which overflows
        // the id space; this must fail with a typed error *before* the
        // builder allocates its O(n) counting arrays.
        let mut b = GraphBuilder::new_growable();
        b.add_edge(u32::MAX, 0);
        let err = b.try_build().unwrap_err();
        assert!(matches!(err, GraphError::TooManyNodes { .. }), "{err}");
    }

    #[test]
    fn heavily_duplicated_input_normalizes() {
        let mut edges = Vec::new();
        for _ in 0..50 {
            edges.push((0, 1));
            edges.push((1, 0));
        }
        let g = from_edges(2, edges);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(NodeId(0)), 1);
    }
}
