//! External-memory `.ocg` construction: bounded-RAM chunk-sort-merge.
//!
//! [`crate::builder::GraphBuilder`] materializes every raw edge in RAM,
//! which caps ingestion around the machine's memory. This builder streams
//! the edge list instead, keeping only one bounded chunk of edges plus
//! O(n) per-node arrays resident:
//!
//! 1. **Normalize + run generation** — each edge is canonicalized to
//!    `(min, max)` (self-loops counted and dropped), packed into a `u64`,
//!    and buffered; full chunks are sorted, deduplicated (duplicates
//!    counted) and spilled to disk as sorted runs of 8 bytes/edge.
//! 2. **Merge** — a k-way merge of the runs yields the globally sorted,
//!    deduplicated undirected edge set (cross-run duplicates counted
//!    here), writing one merged spill file and accumulating per-node
//!    degrees.
//! 3. **Relabel** — the degree-descending permutation is computed from
//!    the degree array exactly as [`crate::Relabeling::degree_descending`]
//!    does (ties break by ascending original id), so the output is bit-exact
//!    with the in-RAM [`crate::GraphBuilder::build_degree_ordered`] pipeline.
//! 4. **Scatter + final merge** — the merged edges are re-read, mapped
//!    through the permutation, emitted as both directed pairs, chunk-
//!    sorted by `(src, dst)` into a second generation of runs, and merged
//!    straight into the `.ocg` payload while the FNV-1a checksum
//!    accumulates; the header is patched in afterwards.
//!
//! Peak memory is `8 B × chunk_edges` for the chunk buffer plus ~`16 B ×
//! node_count` for the degree/permutation arrays — independent of the
//! edge count. Disk usage peaks around `24 B` per undirected edge
//! (ingest runs + merged spill + directed runs) beyond the output file.
//!
//! The CSR invariants hold by construction (sorted unique rows, both
//! directions emitted), and by default the writer still re-audits the
//! finished file with [`crate::ocg::verify_ocg_path`] before returning.

use crate::error::{GraphError, Result};
use crate::io::{for_each_edge, open_edge_list_reader};
use crate::ocg::{encode_header, write_words, Fnv1a, OCG_FLAG_RELABELED, OCG_FLAG_VALIDATED};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{BufReader, BufWriter, ErrorKind, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Spill-file buffer size (per open run).
const SPILL_BUF: usize = 1 << 18;

/// Tuning knobs for the external-memory builder.
#[derive(Debug, Clone)]
pub struct BuildOptions {
    /// Edges buffered in RAM per sorted run (8 bytes each). The chunk
    /// buffer — `8 B × chunk_edges` — dominates the builder's peak RSS.
    pub chunk_edges: usize,
    /// Lower bound on the node count, for inputs whose trailing nodes are
    /// isolated (ids are otherwise inferred as `max_id + 1`).
    pub min_nodes: usize,
    /// Apply the degree-descending relabeling and store the id map.
    /// Disable to keep the input's own node numbering.
    pub relabel: bool,
    /// Re-audit the finished file (checksum + full CSR invariant sweep).
    pub verify: bool,
    /// Directory for spill files; defaults to `<output>.tmp`.
    pub tmp_dir: Option<PathBuf>,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            chunk_edges: 8 << 20,
            min_nodes: 0,
            relabel: true,
            verify: true,
            tmp_dir: None,
        }
    }
}

/// What the builder saw and produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildStats {
    /// Nodes in the output graph.
    pub nodes: usize,
    /// Deduplicated undirected edges in the output graph.
    pub edges: usize,
    /// Edge lines consumed from the input.
    pub edges_read: u64,
    /// Self-loops dropped.
    pub self_loops: u64,
    /// Duplicate edges dropped.
    pub duplicates: u64,
    /// Sorted runs spilled during ingestion (1 means the input fit one
    /// chunk).
    pub ingest_runs: usize,
}

/// Spill directory that cleans up after itself.
struct TmpDir {
    path: PathBuf,
    counter: usize,
}

impl TmpDir {
    fn new(path: PathBuf) -> Result<TmpDir> {
        std::fs::create_dir_all(&path)?;
        TmpDir::try_lock(&path)?;
        Ok(TmpDir { path, counter: 0 })
    }

    /// Refuses to share a spill directory with a concurrent build.
    fn try_lock(path: &Path) -> Result<()> {
        let lock = path.join("lock");
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&lock)
        {
            Ok(_) => Ok(()),
            Err(e) if e.kind() == ErrorKind::AlreadyExists => Err(GraphError::InvalidFormat {
                message: format!(
                    "spill directory {} is already in use (stale `lock` file from a crashed \
                     build? remove the directory to proceed)",
                    path.display()
                ),
            }),
            Err(e) => Err(e.into()),
        }
    }

    fn next_run(&mut self) -> PathBuf {
        self.counter += 1;
        self.path.join(format!("run{}.bin", self.counter))
    }
}

impl Drop for TmpDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.path).ok();
    }
}

/// Sorts a chunk, optionally dedups it (adding to `duplicates`), and
/// spills it as a sorted run of little-endian `u64`s.
fn spill_run(
    tmp: &mut TmpDir,
    chunk: &mut Vec<u64>,
    dedup: bool,
    duplicates: &mut u64,
) -> Result<PathBuf> {
    chunk.sort_unstable();
    if dedup {
        let before = chunk.len();
        chunk.dedup();
        *duplicates += (before - chunk.len()) as u64;
    }
    let path = tmp.next_run();
    let mut w = BufWriter::with_capacity(SPILL_BUF, File::create(&path)?);
    let mut buf = [0u8; 4096];
    let mut used = 0usize;
    for &key in chunk.iter() {
        buf[used..used + 8].copy_from_slice(&key.to_le_bytes());
        used += 8;
        if used == buf.len() {
            w.write_all(&buf)?;
            used = 0;
        }
    }
    w.write_all(&buf[..used])?;
    w.flush()?;
    chunk.clear();
    Ok(path)
}

struct RunCursor {
    reader: BufReader<File>,
}

impl RunCursor {
    fn next_key(&mut self) -> Result<Option<u64>> {
        let mut bytes = [0u8; 8];
        match self.reader.read_exact(&mut bytes) {
            Ok(()) => Ok(Some(u64::from_le_bytes(bytes))),
            Err(e) if e.kind() == ErrorKind::UnexpectedEof => Ok(None),
            Err(e) => Err(e.into()),
        }
    }
}

/// K-way merges sorted runs, emitting every key in global order
/// (duplicates included — callers dedup where needed).
fn merge_runs(paths: &[PathBuf], mut emit: impl FnMut(u64) -> Result<()>) -> Result<()> {
    let mut cursors = Vec::with_capacity(paths.len());
    let mut heap = BinaryHeap::with_capacity(paths.len());
    for path in paths {
        let mut cursor = RunCursor {
            reader: BufReader::with_capacity(SPILL_BUF, File::open(path)?),
        };
        if let Some(key) = cursor.next_key()? {
            heap.push(Reverse((key, cursors.len())));
        }
        cursors.push(cursor);
    }
    while let Some(Reverse((key, idx))) = heap.pop() {
        emit(key)?;
        if let Some(next) = cursors[idx].next_key()? {
            heap.push(Reverse((next, idx)));
        }
    }
    Ok(())
}

#[inline]
fn pack(hi: u32, lo: u32) -> u64 {
    (hi as u64) << 32 | lo as u64
}

/// Builds a `.ocg` file from an edge-list file (plain text or gzip,
/// detected by magic bytes). Input-side errors carry the input path,
/// everything else the output path.
pub fn build_ocg_from_path<P: AsRef<Path>, Q: AsRef<Path>>(
    input: P,
    output: Q,
    options: &BuildOptions,
) -> Result<BuildStats> {
    let input = input.as_ref();
    let output = output.as_ref();
    build_ocg_with(
        |sink| {
            let reader = open_edge_list_reader(input).map_err(|e| e.with_path(input))?;
            for_each_edge(reader, sink).map_err(|e| e.with_path(input))
        },
        output,
        options,
    )
}

/// Builds a `.ocg` file from an in-process edge iterator (synthetic
/// generators, tests). Edges may repeat and contain self-loops; they are
/// normalized exactly as [`crate::builder::GraphBuilder`] would.
pub fn build_ocg_from_edges<I, Q>(edges: I, output: Q, options: &BuildOptions) -> Result<BuildStats>
where
    I: IntoIterator<Item = (u32, u32)>,
    Q: AsRef<Path>,
{
    build_ocg_with(
        |sink| {
            let mut read = 0u64;
            for (u, v) in edges {
                read += 1;
                sink(u, v)?;
            }
            Ok(read)
        },
        output.as_ref(),
        options,
    )
}

/// Builds a `.ocg` file from a push-model edge source: `produce` is
/// handed an `emit(u, v)` closure and calls it once per raw edge
/// (self-loops and duplicates welcome — they are normalized exactly as
/// [`crate::builder::GraphBuilder`] would). This is the streaming entry
/// point for closure-sink generators (e.g. `oca_gen::wiki_like_edges`),
/// which push edges instead of yielding an iterator, so a synthetic graph
/// can flow straight to disk without ever materializing its edge list.
///
/// `emit` is infallible from the producer's point of view; an I/O error
/// raised while spilling is stashed, further edges are ignored, and the
/// error surfaces once `produce` returns. The producer's own return value
/// (e.g. a planted ground-truth cover) is handed back alongside the
/// [`BuildStats`].
pub fn build_ocg_from_emitter<F, T, Q>(
    produce: F,
    output: Q,
    options: &BuildOptions,
) -> Result<(BuildStats, T)>
where
    F: FnOnce(&mut dyn FnMut(u32, u32)) -> T,
    Q: AsRef<Path>,
{
    let mut deferred: Option<GraphError> = None;
    let mut payload: Option<T> = None;
    let stats = build_ocg_with(
        |sink| {
            let mut read = 0u64;
            payload = Some(produce(&mut |u, v| {
                if deferred.is_none() {
                    read += 1;
                    if let Err(e) = sink(u, v) {
                        deferred = Some(e);
                    }
                }
            }));
            match deferred.take() {
                Some(e) => Err(e),
                None => Ok(read),
            }
        },
        output.as_ref(),
        options,
    )?;
    Ok((stats, payload.expect("produce ran to completion")))
}

/// Core pipeline; `ingest` drives edges into the sink and returns how
/// many it produced.
fn build_ocg_with<F>(ingest: F, output: &Path, options: &BuildOptions) -> Result<BuildStats>
where
    F: FnOnce(&mut dyn FnMut(u32, u32) -> Result<()>) -> Result<u64>,
{
    build_inner(ingest, output, options).map_err(|e| e.with_path(output))
}

fn build_inner<F>(ingest: F, output: &Path, options: &BuildOptions) -> Result<BuildStats>
where
    F: FnOnce(&mut dyn FnMut(u32, u32) -> Result<()>) -> Result<u64>,
{
    let chunk_cap = options.chunk_edges.max(1024);
    let mut tmp = TmpDir::new(
        options
            .tmp_dir
            .clone()
            .unwrap_or_else(|| output.with_extension("ocg.tmp")),
    )?;

    // Phase 1: normalize, chunk-sort, spill.
    let mut chunk: Vec<u64> = Vec::with_capacity(chunk_cap);
    let mut runs: Vec<PathBuf> = Vec::new();
    let mut self_loops = 0u64;
    let mut duplicates = 0u64;
    let mut max_id: Option<u32> = None;
    let edges_read = {
        let mut sink = |u: u32, v: u32| -> Result<()> {
            if u == v {
                self_loops += 1;
                return Ok(());
            }
            max_id = Some(max_id.map_or(u.max(v), |m| m.max(u).max(v)));
            chunk.push(pack(u.min(v), u.max(v)));
            if chunk.len() == chunk_cap {
                runs.push(spill_run(&mut tmp, &mut chunk, true, &mut duplicates)?);
            }
            Ok(())
        };
        ingest(&mut sink)?
    };
    if !chunk.is_empty() {
        runs.push(spill_run(&mut tmp, &mut chunk, true, &mut duplicates)?);
    }
    let ingest_runs = runs.len();

    let inferred = max_id.map_or(0u64, |m| m as u64 + 1);
    let node_count = inferred.max(options.min_nodes as u64);
    if node_count > u32::MAX as u64 {
        return Err(GraphError::TooManyNodes {
            requested: node_count as usize,
        });
    }
    let n = node_count as usize;

    // Phase 2: merge runs into the deduplicated spill + degree array.
    let merged_path = tmp.path.join("merged.bin");
    let mut degrees = vec![0u32; n];
    let mut edge_count = 0usize;
    {
        let mut merged = BufWriter::with_capacity(SPILL_BUF, File::create(&merged_path)?);
        let mut last: Option<u64> = None;
        merge_runs(&runs, |key| {
            if last == Some(key) {
                duplicates += 1;
                return Ok(());
            }
            last = Some(key);
            edge_count += 1;
            if edge_count > (u32::MAX / 2) as usize {
                return Err(GraphError::TooManyEdges {
                    requested: edge_count,
                });
            }
            degrees[(key >> 32) as usize] += 1;
            degrees[key as u32 as usize] += 1;
            merged.write_all(&key.to_le_bytes())?;
            Ok(())
        })?;
        merged.flush()?;
    }
    for run in runs.drain(..) {
        std::fs::remove_file(run).ok();
    }
    let directed = edge_count * 2;

    // Phase 3: the degree-descending permutation, matching
    // Relabeling::degree_descending key for key.
    let old_to_new: Option<Vec<u32>> = options.relabel.then(|| {
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by_key(|&v| (Reverse(degrees[v as usize]), v));
        let mut inverse = vec![0u32; n];
        for (new, &old) in order.iter().enumerate() {
            inverse[old as usize] = new as u32;
        }
        // `order` is new→old; stash it in place of degrees' role below by
        // returning the inverse and recomputing order from it when the
        // id-map section is written.
        inverse
    });
    let mut offsets: Vec<u32> = Vec::with_capacity(n + 1);
    offsets.push(0);
    match &old_to_new {
        Some(map) => {
            // Permuted degrees: degree of new id i is the degree of the
            // original node mapped to i.
            let mut new_degrees = vec![0u32; n];
            for (old, &new) in map.iter().enumerate() {
                new_degrees[new as usize] = degrees[old];
            }
            let mut total = 0u32;
            for &d in &new_degrees {
                total += d;
                offsets.push(total);
            }
        }
        None => {
            let mut total = 0u32;
            for &d in &degrees {
                total += d;
                offsets.push(total);
            }
        }
    }
    drop(degrees);
    debug_assert_eq!(*offsets.last().unwrap() as usize, directed);

    // Phase 4: scatter directed, relabeled pairs into a second generation
    // of sorted runs.
    let mut directed_runs: Vec<PathBuf> = Vec::new();
    {
        let mut reader = BufReader::with_capacity(SPILL_BUF, File::open(&merged_path)?);
        let mut bytes = [0u8; 8];
        loop {
            match reader.read_exact(&mut bytes) {
                Ok(()) => {}
                Err(e) if e.kind() == ErrorKind::UnexpectedEof => break,
                Err(e) => return Err(e.into()),
            }
            let key = u64::from_le_bytes(bytes);
            let (a, b) = ((key >> 32) as u32, key as u32);
            let (a, b) = match &old_to_new {
                Some(map) => (map[a as usize], map[b as usize]),
                None => (a, b),
            };
            for pair in [pack(a, b), pack(b, a)] {
                chunk.push(pair);
                if chunk.len() == chunk_cap {
                    directed_runs.push(spill_run(&mut tmp, &mut chunk, false, &mut 0)?);
                }
            }
        }
        if !chunk.is_empty() {
            directed_runs.push(spill_run(&mut tmp, &mut chunk, false, &mut 0)?);
        }
    }
    std::fs::remove_file(&merged_path).ok();
    drop(chunk);

    // Phase 5: merge the directed runs straight into the .ocg payload.
    let mut flags = OCG_FLAG_VALIDATED;
    if options.relabel {
        flags |= OCG_FLAG_RELABELED;
    }
    // Stream into a same-directory temp file and rename only once the
    // header is patched and the payload fsynced: a crash mid-build leaves
    // a previous .ocg at `output` (if any) complete and untouched.
    let final_tmp = crate::atomic::temp_path_for(output);
    // Any error between here and the commit removes the temp file.
    struct RemoveOnDrop(Option<std::path::PathBuf>);
    impl Drop for RemoveOnDrop {
        fn drop(&mut self) {
            if let Some(p) = self.0.take() {
                let _ = std::fs::remove_file(p);
            }
        }
    }
    let mut final_guard = RemoveOnDrop(Some(final_tmp.clone()));
    let mut w = BufWriter::with_capacity(SPILL_BUF, File::create(&final_tmp)?);
    w.write_all(&[0u8; crate::ocg::OCG_HEADER_LEN])?;
    let mut fnv = Fnv1a::new();
    write_words(&mut w, &mut fnv, offsets.iter().copied())?;
    drop(offsets);
    {
        let mut pack_buf = [0u8; 4096];
        let mut used = 0usize;
        let mut emitted = 0usize;
        merge_runs(&directed_runs, |key| {
            emitted += 1;
            pack_buf[used..used + 4].copy_from_slice(&(key as u32).to_le_bytes());
            used += 4;
            if used == pack_buf.len() {
                fnv.update(&pack_buf);
                w.write_all(&pack_buf)?;
                used = 0;
            }
            Ok(())
        })?;
        fnv.update(&pack_buf[..used]);
        w.write_all(&pack_buf[..used])?;
        if emitted != directed {
            return Err(GraphError::InvalidFormat {
                message: format!("internal error: emitted {emitted} of {directed} entries"),
            });
        }
    }
    if let Some(map) = &old_to_new {
        // The id-map section stores new→old; invert the inverse.
        let mut new_to_old = vec![0u32; n];
        for (old, &new) in map.iter().enumerate() {
            new_to_old[new as usize] = old as u32;
        }
        write_words(&mut w, &mut fnv, new_to_old.into_iter())?;
    }
    w.flush()?;
    let mut file = w.into_inner().map_err(|e| e.into_error())?;
    let header = encode_header(
        flags,
        node_count,
        directed as u64,
        self_loops,
        duplicates,
        fnv.finish(),
    );
    file.seek(SeekFrom::Start(0))?;
    file.write_all(&header)?;
    file.sync_all()?;
    drop(file);
    crate::atomic::commit_temp_path(&final_tmp, output)?;
    final_guard.0 = None;
    drop(tmp);

    if options.verify {
        crate::ocg::verify_ocg_path(output)?;
    }
    Ok(BuildStats {
        nodes: n,
        edges: edge_count,
        edges_read,
        self_loops,
        duplicates,
        ingest_runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::ocg::open_ocg_path;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("oca_ocg_build_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    /// Deterministic messy edge list: duplicates, reversals, self-loops.
    fn messy_edges(n: u32, count: usize, seed: u64) -> Vec<(u32, u32)> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..count)
            .map(|_| {
                let u = (next() % n as u64) as u32;
                let v = (next() % n as u64) as u32;
                (u, v)
            })
            .collect()
    }

    #[test]
    fn streamed_build_is_bit_exact_with_in_ram_builder() {
        let edges = messy_edges(300, 4000, 42);
        let path = tmp("bitexact.ocg");
        // Tiny chunks force many runs through both merge generations.
        let options = BuildOptions {
            chunk_edges: 0, // clamped to the 1024 minimum
            min_nodes: 300,
            ..BuildOptions::default()
        };
        let stats = build_ocg_from_edges(edges.iter().copied(), &path, &options).unwrap();
        assert!(stats.ingest_runs > 1, "want a real multi-run merge");

        let mut b = GraphBuilder::new(300);
        b.extend_edges(edges.iter().copied());
        let (report_graph, report) = b.clone().try_build_report().unwrap();
        let (ram_graph, ram_relabeling) = b.build_degree_ordered();
        drop(report_graph);

        let opened = open_ocg_path(&path).unwrap();
        assert_eq!(opened.graph, ram_graph, "CSR must match bit for bit");
        assert_eq!(opened.relabeling().unwrap(), ram_relabeling);
        assert_eq!(stats.self_loops, report.self_loops);
        assert_eq!(stats.duplicates, report.duplicates);
        assert_eq!(stats.edges, ram_graph.edge_count());
        assert_eq!(stats.edges_read, 4000);
        assert_eq!(
            opened.info.checksum,
            crate::ocg::payload_checksum(&ram_graph, Some(&ram_relabeling))
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unrelabeled_build_matches_plain_builder() {
        let edges = messy_edges(64, 500, 7);
        let path = tmp("plainexact.ocg");
        let options = BuildOptions {
            relabel: false,
            min_nodes: 64,
            ..BuildOptions::default()
        };
        build_ocg_from_edges(edges.iter().copied(), &path, &options).unwrap();

        let mut b = GraphBuilder::new(64);
        b.extend_edges(edges.iter().copied());
        let ram = b.build();

        let opened = open_ocg_path(&path).unwrap();
        assert_eq!(opened.graph, ram);
        assert!(opened.relabeling().is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_input_builds_an_empty_graph() {
        let path = tmp("empty.ocg");
        let stats =
            build_ocg_from_edges(std::iter::empty(), &path, &BuildOptions::default()).unwrap();
        assert_eq!(stats.nodes, 0);
        assert_eq!(stats.edges, 0);
        let opened = open_ocg_path(&path).unwrap();
        assert_eq!(opened.graph.node_count(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn min_nodes_pads_isolated_tail() {
        let path = tmp("padded.ocg");
        let options = BuildOptions {
            min_nodes: 10,
            ..BuildOptions::default()
        };
        build_ocg_from_edges([(0, 1)], &path, &options).unwrap();
        let opened = open_ocg_path(&path).unwrap();
        assert_eq!(opened.graph.node_count(), 10);
        assert_eq!(opened.graph.edge_count(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn builds_from_edge_list_file_with_path_in_errors() {
        let input = tmp("input.edges");
        std::fs::write(&input, "# comment\n0 1\n1 2\n0 1\n2 2\n").unwrap();
        let output = tmp("fromfile.ocg");
        let stats = build_ocg_from_path(&input, &output, &BuildOptions::default()).unwrap();
        assert_eq!(stats.edges, 2);
        assert_eq!(stats.duplicates, 1);
        assert_eq!(stats.self_loops, 1);

        let bad = tmp("bad.edges");
        std::fs::write(&bad, "0 zzz\n").unwrap();
        let err = build_ocg_from_path(&bad, &output, &BuildOptions::default()).unwrap_err();
        assert!(err.to_string().contains("bad.edges"), "{err}");
        for p in [input, output, bad] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn emitter_build_matches_iterator_build_and_returns_payload() {
        let edges = messy_edges(80, 900, 13);
        let from_iter = tmp("emitter_iter.ocg");
        let from_emit = tmp("emitter_push.ocg");
        let options = BuildOptions {
            min_nodes: 80,
            ..BuildOptions::default()
        };
        let iter_stats = build_ocg_from_edges(edges.iter().copied(), &from_iter, &options).unwrap();
        let (emit_stats, payload) = build_ocg_from_emitter(
            |emit| {
                for &(u, v) in &edges {
                    emit(u, v);
                }
                "planted"
            },
            &from_emit,
            &options,
        )
        .unwrap();
        assert_eq!(payload, "planted");
        assert_eq!(emit_stats, iter_stats);
        let a = open_ocg_path(&from_iter).unwrap();
        let b = open_ocg_path(&from_emit).unwrap();
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.info.checksum, b.info.checksum);
        for p in [from_iter, from_emit] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn emitter_build_surfaces_deferred_errors() {
        let path = tmp("emitter_err.ocg");
        let spill_dir = path.with_extension("ocg.tmp");
        // Yank the spill directory out from under the build mid-stream: the
        // first chunk spill fails, the error is stashed, the remaining
        // emits are ignored, and the failure surfaces when the producer
        // returns — the emit closure itself never reports it.
        let err = build_ocg_from_emitter(
            |emit| {
                std::fs::remove_dir_all(&spill_dir).unwrap();
                for i in 0..4096u32 {
                    emit(i, i + 1);
                }
            },
            &path,
            &BuildOptions {
                chunk_edges: 0, // clamped to the 1024 minimum → forces a spill
                ..BuildOptions::default()
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("emitter_err"), "{err}");
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir_all(&spill_dir).ok();
    }

    #[test]
    fn u32_boundary_ids_are_rejected() {
        let path = tmp("boundary.ocg");
        let err =
            build_ocg_from_edges([(0, u32::MAX)], &path, &BuildOptions::default()).unwrap_err();
        assert!(err.to_string().contains("2^32"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
