//! Breadth-first and depth-first traversal iterators.

use crate::csr::CsrGraph;
use crate::node::NodeId;
use std::collections::VecDeque;

/// Breadth-first traversal from a start node, yielding each reachable node
/// once in BFS order.
#[derive(Debug)]
pub struct Bfs<'g> {
    graph: &'g CsrGraph,
    queue: VecDeque<NodeId>,
    visited: Vec<bool>,
}

impl<'g> Bfs<'g> {
    /// A BFS rooted at `start`.
    pub fn new(graph: &'g CsrGraph, start: NodeId) -> Self {
        let mut visited = vec![false; graph.node_count()];
        let mut queue = VecDeque::new();
        if start.index() < graph.node_count() {
            visited[start.index()] = true;
            queue.push_back(start);
        }
        Bfs {
            graph,
            queue,
            visited,
        }
    }
}

impl Iterator for Bfs<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let v = self.queue.pop_front()?;
        for &u in self.graph.neighbors(v) {
            if !self.visited[u.index()] {
                self.visited[u.index()] = true;
                self.queue.push_back(u);
            }
        }
        Some(v)
    }
}

/// Depth-first traversal from a start node (preorder).
#[derive(Debug)]
pub struct Dfs<'g> {
    graph: &'g CsrGraph,
    stack: Vec<NodeId>,
    visited: Vec<bool>,
}

impl<'g> Dfs<'g> {
    /// A DFS rooted at `start`.
    pub fn new(graph: &'g CsrGraph, start: NodeId) -> Self {
        let mut visited = vec![false; graph.node_count()];
        let mut stack = Vec::new();
        if start.index() < graph.node_count() {
            visited[start.index()] = true;
            stack.push(start);
        }
        Dfs {
            graph,
            stack,
            visited,
        }
    }
}

impl Iterator for Dfs<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let v = self.stack.pop()?;
        for &u in self.graph.neighbors(v).iter().rev() {
            if !self.visited[u.index()] {
                self.visited[u.index()] = true;
                self.stack.push(u);
            }
        }
        Some(v)
    }
}

/// Nodes within `radius` hops of `start` (including `start`), in BFS order.
pub fn ball(graph: &CsrGraph, start: NodeId, radius: usize) -> Vec<NodeId> {
    let mut visited = vec![false; graph.node_count()];
    let mut out = Vec::new();
    let mut frontier = vec![start];
    visited[start.index()] = true;
    out.push(start);
    for _ in 0..radius {
        let mut next = Vec::new();
        for &v in &frontier {
            for &u in graph.neighbors(v) {
                if !visited[u.index()] {
                    visited[u.index()] = true;
                    out.push(u);
                    next.push(u);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    fn path_graph() -> CsrGraph {
        from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn bfs_visits_in_level_order() {
        let g = from_edges(6, [(0, 1), (0, 2), (1, 3), (2, 4), (4, 5)]);
        let order: Vec<_> = Bfs::new(&g, NodeId(0)).map(|v| v.raw()).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn bfs_only_reaches_component() {
        let g = from_edges(5, [(0, 1), (2, 3)]);
        let reached: Vec<_> = Bfs::new(&g, NodeId(0)).collect();
        assert_eq!(reached.len(), 2);
    }

    #[test]
    fn dfs_preorder_on_path() {
        let g = path_graph();
        let order: Vec<_> = Dfs::new(&g, NodeId(0)).map(|v| v.raw()).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn dfs_visits_every_reachable_node_once() {
        let g = from_edges(6, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let mut order: Vec<_> = Dfs::new(&g, NodeId(0)).map(|v| v.raw()).collect();
        order.sort_unstable();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ball_radii() {
        let g = path_graph();
        assert_eq!(ball(&g, NodeId(2), 0), vec![NodeId(2)]);
        let b1: Vec<_> = ball(&g, NodeId(2), 1).iter().map(|v| v.raw()).collect();
        assert_eq!(b1, vec![2, 1, 3]);
        assert_eq!(ball(&g, NodeId(0), 10).len(), 5, "saturates at component");
    }
}
