//! Error types for graph construction and I/O.

use std::fmt;

/// Errors produced by graph construction, validation and I/O.
#[derive(Debug)]
pub enum GraphError {
    /// An edge referenced a node index `>= node_count`.
    NodeOutOfBounds {
        /// The offending node index.
        node: u32,
        /// The number of nodes in the graph being built.
        node_count: u32,
    },
    /// A parsed edge list line could not be understood.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// The operation needs a non-empty graph.
    EmptyGraph,
    /// A graph was requested with more nodes than the `u32` id space holds.
    TooManyNodes {
        /// The requested node count.
        requested: usize,
    },
    /// An edge set whose directed adjacency overflows the compact CSR's
    /// `u32` offset space.
    TooManyEdges {
        /// The raw (pre-deduplication) undirected edge count.
        requested: usize,
    },
    /// A binary graph file (`.ocg`) was malformed or failed verification.
    InvalidFormat {
        /// Description of the problem.
        message: String,
    },
    /// An error annotated with the file path it came from.
    WithPath {
        /// The offending file.
        path: std::path::PathBuf,
        /// The underlying error.
        source: Box<GraphError>,
    },
}

/// The integrity-failure classes a binary file reader distinguishes.
///
/// Ops scripts branch on these (via distinct CLI exit codes): a checksum
/// mismatch or truncation means the file is damaged and should be rebuilt
/// or restored from backup, while a version mismatch means the file is
/// fine but this binary is the wrong vintage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntegrityClass {
    /// The stored checksum does not match the file contents.
    ChecksumMismatch,
    /// The file is shorter than its own header or length fields imply.
    Truncated,
    /// The file records a format version this build does not read.
    VersionMismatch,
}

impl IntegrityClass {
    /// A short stable label for logs and CLI output.
    pub fn label(self) -> &'static str {
        match self {
            IntegrityClass::ChecksumMismatch => "checksum-mismatch",
            IntegrityClass::Truncated => "truncation",
            IntegrityClass::VersionMismatch => "version-mismatch",
        }
    }
}

impl GraphError {
    /// Annotates `self` with the file path it originated from. An error
    /// already carrying a path is returned unchanged, so nested helpers
    /// can all call this without double-wrapping.
    pub fn with_path(self, path: impl Into<std::path::PathBuf>) -> GraphError {
        match self {
            GraphError::WithPath { .. } => self,
            other => GraphError::WithPath {
                path: path.into(),
                source: Box::new(other),
            },
        }
    }

    /// Classifies an `.ocg` integrity failure, if `self` is one.
    ///
    /// The `.ocg` reader reports every integrity problem as
    /// [`GraphError::InvalidFormat`] with a descriptive message; this
    /// recovers the machine-readable class from the message shape (the
    /// messages are pinned by tests here and in `ocg`). Non-integrity
    /// errors return `None`.
    pub fn integrity_class(&self) -> Option<IntegrityClass> {
        match self {
            GraphError::WithPath { source, .. } => source.integrity_class(),
            GraphError::InvalidFormat { message } => {
                if message.starts_with("checksum mismatch") {
                    Some(IntegrityClass::ChecksumMismatch)
                } else if message.contains("unsupported version") {
                    Some(IntegrityClass::VersionMismatch)
                } else if message.contains("shorter than") || message.contains("the header implies")
                {
                    Some(IntegrityClass::Truncated)
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node, node_count } => write!(
                f,
                "node index {node} out of bounds for graph with {node_count} nodes"
            ),
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::EmptyGraph => write!(f, "operation requires a non-empty graph"),
            GraphError::TooManyNodes { requested } => {
                write!(f, "graphs are limited to 2^32 - 1 nodes, got {requested}")
            }
            GraphError::TooManyEdges { requested } => {
                write!(
                    f,
                    "graphs are limited to 2^31 - 1 undirected edges, got {requested}"
                )
            }
            GraphError::InvalidFormat { message } => {
                write!(f, "invalid graph file: {message}")
            }
            GraphError::WithPath { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            GraphError::WithPath { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

/// Convenience alias for graph results.
pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GraphError::NodeOutOfBounds {
            node: 9,
            node_count: 5,
        };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("5"));

        let e = GraphError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));

        assert!(GraphError::EmptyGraph.to_string().contains("non-empty"));
    }

    #[test]
    fn io_error_source_is_preserved() {
        use std::error::Error;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = GraphError::from(io);
        assert!(e.source().is_some());
    }

    #[test]
    fn integrity_classes_recover_from_pinned_messages() {
        // These message shapes are what `ocg.rs` actually emits; the ocg
        // tests pin them from the writer side, this pins the classifier.
        let checksum = GraphError::InvalidFormat {
            message: "checksum mismatch: header records 0x01, payload hashes to 0x02".into(),
        };
        assert_eq!(
            checksum.integrity_class(),
            Some(IntegrityClass::ChecksumMismatch)
        );
        let version = GraphError::InvalidFormat {
            message: "unsupported version 9 (this build reads version 1)".into(),
        };
        assert_eq!(
            version.integrity_class(),
            Some(IntegrityClass::VersionMismatch)
        );
        let short = GraphError::InvalidFormat {
            message: "file is 10 bytes, shorter than the 64-byte header".into(),
        };
        assert_eq!(short.integrity_class(), Some(IntegrityClass::Truncated));
        let implied = GraphError::InvalidFormat {
            message: "file is 100 bytes but the header implies 200".into(),
        };
        assert_eq!(implied.integrity_class(), Some(IntegrityClass::Truncated));
        // Classification sees through the path wrapper.
        assert_eq!(
            checksum.with_path("g.ocg").integrity_class(),
            Some(IntegrityClass::ChecksumMismatch)
        );
        // Non-integrity errors do not classify.
        assert_eq!(GraphError::EmptyGraph.integrity_class(), None);
        let other = GraphError::InvalidFormat {
            message: "structural validation failed: neighbor list not sorted".into(),
        };
        assert_eq!(other.integrity_class(), None);
        // Labels are the stable strings ops scripts grep for.
        assert_eq!(IntegrityClass::Truncated.label(), "truncation");
        assert_eq!(
            IntegrityClass::ChecksumMismatch.label(),
            "checksum-mismatch"
        );
        assert_eq!(IntegrityClass::VersionMismatch.label(), "version-mismatch");
    }

    #[test]
    fn with_path_annotates_once() {
        use std::error::Error;
        let e = GraphError::EmptyGraph.with_path("a.txt").with_path("b.txt");
        let msg = e.to_string();
        assert!(msg.contains("a.txt"), "kept the original path: {msg}");
        assert!(!msg.contains("b.txt"), "no double wrapping: {msg}");
        assert!(e.source().is_some());
    }
}
