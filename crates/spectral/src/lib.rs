//! # oca-spectral — sparse spectral estimation for OCA
//!
//! Section II of the OCA paper embeds a graph into a vector space whose
//! interaction strength `c` must satisfy `c = −1/λ_min`, where `λ_min` is
//! the most negative eigenvalue of the adjacency matrix, "efficiently
//! calculated using the well-known power method". This crate implements
//! exactly that: streaming CSR matrix–vector products, dominance-safe
//! shifted power iterations for both spectral extremes, and the clamped
//! interaction strength.
//!
//! ```
//! use oca_graph::from_edges;
//! use oca_spectral::{interaction_strength, PowerConfig};
//!
//! // A 4-star: λ_min = −2, so c = 1/2.
//! let g = from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]);
//! let s = interaction_strength(&g, &PowerConfig::default());
//! assert!((s.c - 0.5).abs() < 1e-6);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod interaction;
pub mod matvec;
pub mod power;
pub mod vectors;

pub use interaction::{interaction_strength, InteractionStrength, DEFAULT_C, MAX_C};
pub use matvec::{adj_matvec, dot, norm, normalize, rayleigh_quotient};
pub use power::{lambda_max, lambda_min, PowerConfig, PowerResult};
pub use vectors::{VectorError, VectorRepresentation};
