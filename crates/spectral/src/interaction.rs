//! The interaction strength `c` of the virtual vector representation.
//!
//! Section II of the paper: in a virtual vector representation, adjacent
//! nodes have inner product `c ∈ [0, 1)` and non-adjacent nodes are
//! orthogonal. Larger `c` separates communities better, and the largest
//! admissible value is `c = −1/λ_min`.

use crate::power::{lambda_min, PowerConfig, PowerResult};
use oca_graph::CsrGraph;

/// Largest representable interaction strength; Definition 1 requires `c < 1`.
pub const MAX_C: f64 = 1.0 - 1e-9;

/// Fallback used for degenerate graphs (no edges), where `λ_min = 0` and the
/// paper's formula is undefined. Any `c ∈ (0,1)` behaves identically there
/// because there are no internal edges to weight.
pub const DEFAULT_C: f64 = 0.5;

/// The interaction strength together with its provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct InteractionStrength {
    /// The value of `c` to plug into the fitness function.
    pub c: f64,
    /// The `λ_min` estimate it was derived from (0 for degenerate graphs).
    pub lambda_min: f64,
    /// The underlying power-iteration diagnostics.
    pub power: PowerResult,
}

/// Computes `c = −1/λ_min`, clamped into `(0, MAX_C]`.
///
/// For any graph with at least one edge, interlacing with the `K2` spectrum
/// gives `λ_min ≤ −1`, hence `c ∈ (0, 1]`; the clamp only trims the exact
/// `λ_min = −1` case (disjoint unions of cliques) to stay strictly below 1,
/// and guards against small numerical overshoot of the power method.
pub fn interaction_strength(graph: &CsrGraph, config: &PowerConfig) -> InteractionStrength {
    let power = lambda_min(graph, config);
    let lam = power.eigenvalue;
    let c = if lam >= -f64::EPSILON {
        DEFAULT_C
    } else {
        (-1.0 / lam).clamp(f64::EPSILON, MAX_C)
    };
    InteractionStrength {
        c,
        lambda_min: lam,
        power,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oca_graph::from_edges;

    fn cfg() -> PowerConfig {
        PowerConfig::default()
    }

    #[test]
    fn k2_gives_c_close_to_one() {
        let g = from_edges(2, [(0, 1)]);
        let s = interaction_strength(&g, &cfg());
        assert!((s.lambda_min + 1.0).abs() < 1e-6);
        assert!(s.c <= MAX_C);
        assert!(s.c > 0.999, "c = {}", s.c);
    }

    #[test]
    fn star_gives_c_half() {
        // K_{1,4}: λ_min = −2 ⇒ c = 0.5.
        let g = from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]);
        let s = interaction_strength(&g, &cfg());
        assert!((s.c - 0.5).abs() < 1e-6, "c = {}", s.c);
    }

    #[test]
    fn edgeless_graph_falls_back() {
        let g = oca_graph::CsrGraph::empty(4);
        let s = interaction_strength(&g, &cfg());
        assert_eq!(s.c, DEFAULT_C);
        assert_eq!(s.lambda_min, 0.0);
    }

    #[test]
    fn c_always_in_unit_interval() {
        for (n, edges) in [
            (3, vec![(0u32, 1u32), (1, 2), (0, 2)]),
            (6, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]),
            (4, vec![(0, 1), (2, 3)]),
        ] {
            let g = from_edges(n, edges);
            let s = interaction_strength(&g, &cfg());
            assert!(s.c > 0.0 && s.c < 1.0, "c = {} out of (0,1)", s.c);
        }
    }
}
