//! Sparse matrix–vector products against the graph adjacency matrix.
//!
//! The adjacency matrix is never materialized: `y = A·x` streams the CSR
//! neighbor rows, which is what lets the paper's Section II machinery run on
//! 10⁸-edge graphs "without explicitly constructing the vectors".

use oca_graph::CsrGraph;

/// Computes `out = A·x` where `A` is the adjacency matrix of `graph`.
///
/// # Panics
/// Panics if `x` and `out` don't both have length `graph.node_count()`.
pub fn adj_matvec(graph: &CsrGraph, x: &[f64], out: &mut [f64]) {
    let n = graph.node_count();
    assert_eq!(x.len(), n, "input vector length mismatch");
    assert_eq!(out.len(), n, "output vector length mismatch");
    for v in graph.nodes() {
        let mut acc = 0.0;
        for &u in graph.neighbors(v) {
            acc += x[u.index()];
        }
        out[v.index()] = acc;
    }
}

/// Computes `out = (A + shift·I)·x`.
pub fn shifted_matvec(graph: &CsrGraph, shift: f64, x: &[f64], out: &mut [f64]) {
    adj_matvec(graph, x, out);
    for (o, &xi) in out.iter_mut().zip(x) {
        *o += shift * xi;
    }
}

/// Computes `out = (shift·I − A)·x` (used to reach the *most negative*
/// adjacency eigenvalue with a power iteration).
pub fn reflected_matvec(graph: &CsrGraph, shift: f64, x: &[f64], out: &mut [f64]) {
    adj_matvec(graph, x, out);
    for (o, &xi) in out.iter_mut().zip(x) {
        *o = shift * xi - *o;
    }
}

/// Euclidean norm.
pub fn norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Dot product.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Normalizes `x` in place; returns the prior norm. Leaves zero vectors
/// untouched and returns 0.
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm(x);
    if n > 0.0 {
        for v in x.iter_mut() {
            *v /= n;
        }
    }
    n
}

/// Rayleigh quotient `xᵀAx / xᵀx` of the adjacency matrix at `x`.
///
/// Returns 0 for the zero vector.
pub fn rayleigh_quotient(graph: &CsrGraph, x: &[f64], scratch: &mut [f64]) -> f64 {
    let denom = dot(x, x);
    if denom == 0.0 {
        return 0.0;
    }
    adj_matvec(graph, x, scratch);
    dot(x, scratch) / denom
}

#[cfg(test)]
mod tests {
    use super::*;
    use oca_graph::from_edges;

    #[test]
    fn matvec_on_triangle() {
        let g = from_edges(3, [(0, 1), (1, 2), (0, 2)]);
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        adj_matvec(&g, &x, &mut y);
        assert_eq!(y, [5.0, 4.0, 3.0]);
    }

    #[test]
    fn shifted_and_reflected_agree_with_definition() {
        let g = from_edges(2, [(0, 1)]);
        let x = [3.0, -1.0];
        let mut y = [0.0; 2];
        shifted_matvec(&g, 2.0, &x, &mut y);
        assert_eq!(y, [-1.0 + 6.0, 3.0 - 2.0]); // A·x = [-1, 3]
        reflected_matvec(&g, 2.0, &x, &mut y);
        assert_eq!(y, [6.0 + 1.0, -2.0 - 3.0]);
    }

    #[test]
    fn norm_dot_normalize() {
        let mut x = [3.0, 4.0];
        assert_eq!(norm(&x), 5.0);
        assert_eq!(dot(&x, &[1.0, 1.0]), 7.0);
        let prior = normalize(&mut x);
        assert_eq!(prior, 5.0);
        assert!((norm(&x) - 1.0).abs() < 1e-12);

        let mut z = [0.0, 0.0];
        assert_eq!(normalize(&mut z), 0.0);
        assert_eq!(z, [0.0, 0.0]);
    }

    #[test]
    fn rayleigh_quotient_bounds() {
        // K2 eigenvalues are ±1; any Rayleigh quotient lies within.
        let g = from_edges(2, [(0, 1)]);
        let mut scratch = [0.0; 2];
        let rq = rayleigh_quotient(&g, &[1.0, 1.0], &mut scratch);
        assert!((rq - 1.0).abs() < 1e-12);
        let rq = rayleigh_quotient(&g, &[1.0, -1.0], &mut scratch);
        assert!((rq + 1.0).abs() < 1e-12);
        assert_eq!(rayleigh_quotient(&g, &[0.0, 0.0], &mut scratch), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn matvec_length_mismatch_panics() {
        let g = from_edges(2, [(0, 1)]);
        let mut y = [0.0; 2];
        adj_matvec(&g, &[1.0], &mut y);
    }
}
