//! Explicit virtual vector representations (Definition 1 of the paper).
//!
//! The algorithm never materializes the vectors — that is the whole point
//! of the closed-form fitness — but *constructing* them for small graphs
//! is the ground truth everything else is checked against: given `c`, the
//! Gram matrix `G = I + c·A` is positive semidefinite exactly when
//! `c ≤ −1/λ_min`, and any factor `V` with `VᵀV = G` gives unit vectors
//! with `⟨v_i, v_j⟩ = c` on edges and `0` on non-edges. This module builds
//! such a factor by eigen-free Cholesky (with pivots checked), so tests can
//! verify `ϕ(S) = ‖Σ v_i‖² = |S| + 2·c·Ein(S)` numerically.

use oca_graph::{CsrGraph, NodeId};

/// An explicit virtual vector representation: one `n`-dimensional vector
/// per node (rows of the upper-triangular Cholesky factor).
#[derive(Debug, Clone)]
pub struct VectorRepresentation {
    n: usize,
    /// Column-major: `vectors[j]` is node j's vector (length n).
    vectors: Vec<Vec<f64>>,
    c: f64,
}

/// Why a representation could not be built.
#[derive(Debug, Clone, PartialEq)]
pub enum VectorError {
    /// `c` exceeds the admissible maximum: `I + cA` is not PSD
    /// (a Cholesky pivot went negative beyond tolerance).
    NotPositiveSemidefinite {
        /// The failing pivot column.
        column: usize,
        /// The pivot value.
        pivot: f64,
    },
    /// `c` outside `[0, 1)`.
    InvalidC(f64),
}

impl std::fmt::Display for VectorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VectorError::NotPositiveSemidefinite { column, pivot } => write!(
                f,
                "I + cA is not PSD: pivot {pivot:.3e} at column {column} (c too large)"
            ),
            VectorError::InvalidC(c) => write!(f, "c = {c} outside [0, 1)"),
        }
    }
}

impl std::error::Error for VectorError {}

impl VectorRepresentation {
    /// Builds the representation via Cholesky factorization of `I + cA`.
    ///
    /// Dense `O(n³)`; intended for validation on small graphs only.
    pub fn build(graph: &CsrGraph, c: f64) -> Result<Self, VectorError> {
        if !(0.0..1.0).contains(&c) {
            return Err(VectorError::InvalidC(c));
        }
        let n = graph.node_count();
        // Dense Gram matrix.
        let mut gram = vec![vec![0.0f64; n]; n];
        for (i, row) in gram.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        for (u, v) in graph.edges() {
            gram[u.index()][v.index()] = c;
            gram[v.index()][u.index()] = c;
        }
        // Cholesky with PSD tolerance: L such that L·Lᵀ = G; node vectors
        // are the rows of L (then ⟨row_i, row_j⟩ = G_ij).
        let mut l = vec![vec![0.0f64; n]; n];
        const TOL: f64 = 1e-9;
        for j in 0..n {
            let mut diag = gram[j][j];
            for ljk in &l[j][..j] {
                diag -= ljk * ljk;
            }
            if diag < -TOL {
                return Err(VectorError::NotPositiveSemidefinite {
                    column: j,
                    pivot: diag,
                });
            }
            let diag = diag.max(0.0).sqrt();
            l[j][j] = diag;
            for i in (j + 1)..n {
                let mut acc = gram[i][j];
                for (lik, ljk) in l[i][..j].iter().zip(&l[j][..j]) {
                    acc -= lik * ljk;
                }
                l[i][j] = if diag > TOL { acc / diag } else { 0.0 };
            }
        }
        Ok(VectorRepresentation { n, vectors: l, c })
    }

    /// The interaction strength used.
    pub fn c(&self) -> f64 {
        self.c
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the representation is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The vector of one node.
    pub fn vector(&self, v: NodeId) -> &[f64] {
        &self.vectors[v.index()]
    }

    /// Inner product of two node vectors.
    pub fn inner(&self, u: NodeId, v: NodeId) -> f64 {
        self.vectors[u.index()]
            .iter()
            .zip(&self.vectors[v.index()])
            .map(|(a, b)| a * b)
            .sum()
    }

    /// `ϕ(S) = ‖Σ_{i∈S} v_i‖²`, computed from the explicit vectors —
    /// the quantity the paper's Section II reasons about.
    pub fn phi(&self, members: &[NodeId]) -> f64 {
        let mut sum = vec![0.0f64; self.n];
        for &v in members {
            for (acc, x) in sum.iter_mut().zip(&self.vectors[v.index()]) {
                *acc += x;
            }
        }
        sum.iter().map(|x| x * x).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oca_graph::from_edges;

    const TOL: f64 = 1e-8;

    #[test]
    fn inner_products_match_definition_one() {
        let g = from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let c = 0.4; // C4 has λ_min = −2, so c ≤ 0.5 is admissible.
        let rep = VectorRepresentation::build(&g, c).unwrap();
        for u in g.nodes() {
            assert!((rep.inner(u, u) - 1.0).abs() < TOL, "unit vectors");
            for v in g.nodes() {
                if u == v {
                    continue;
                }
                let want = if g.has_edge(u, v) { c } else { 0.0 };
                assert!(
                    (rep.inner(u, v) - want).abs() < TOL,
                    "⟨{u:?},{v:?}⟩ = {} want {want}",
                    rep.inner(u, v)
                );
            }
        }
    }

    #[test]
    fn phi_matches_closed_form() {
        let g = from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]);
        // λ_min of this graph is ≥ −2.2 or so; c = 0.3 is safe.
        let c = 0.3;
        let rep = VectorRepresentation::build(&g, c).unwrap();
        let cases: Vec<Vec<u32>> = vec![
            vec![0],
            vec![0, 1],
            vec![0, 1, 2],
            vec![0, 1, 2, 3],
            vec![0, 1, 2, 3, 4],
            vec![0, 3],
            vec![1, 3, 4],
        ];
        for ids in cases {
            let members: Vec<NodeId> = ids.iter().map(|&i| NodeId(i)).collect();
            let mut flags = vec![false; 5];
            for &v in &members {
                flags[v.index()] = true;
            }
            let ein = g.internal_edges(&members, &flags);
            let closed = members.len() as f64 + 2.0 * c * ein as f64;
            let explicit = rep.phi(&members);
            assert!(
                (explicit - closed).abs() < TOL,
                "S = {ids:?}: explicit {explicit} vs closed {closed}"
            );
        }
    }

    #[test]
    fn admissibility_boundary() {
        // K2: λ_min = −1, so c < 1 is always admissible …
        let g = from_edges(2, [(0, 1)]);
        assert!(VectorRepresentation::build(&g, 0.999).is_ok());
        // … but the star K_{1,4} has λ_min = −2: c = 0.6 > 0.5 must fail.
        let star = from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]);
        let err = VectorRepresentation::build(&star, 0.6).unwrap_err();
        assert!(matches!(err, VectorError::NotPositiveSemidefinite { .. }));
        assert!(VectorRepresentation::build(&star, 0.49).is_ok());
    }

    #[test]
    fn spectral_c_is_always_admissible() {
        // The whole point of c = −1/λ_min: representations exist.
        use crate::interaction::interaction_strength;
        use crate::power::PowerConfig;
        for (n, edges) in [
            (4usize, vec![(0u32, 1u32), (1, 2), (2, 3), (3, 0)]),
            (5, vec![(0, 1), (0, 2), (0, 3), (0, 4)]),
            (
                6,
                vec![(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)],
            ),
        ] {
            let g = from_edges(n, edges);
            let s = interaction_strength(&g, &PowerConfig::default());
            // Back off a hair for power-method tolerance.
            let c = (s.c * (1.0 - 1e-6)).min(crate::interaction::MAX_C);
            assert!(
                VectorRepresentation::build(&g, c).is_ok(),
                "spectral c = {c} should be admissible"
            );
        }
    }

    #[test]
    fn invalid_c_rejected() {
        let g = from_edges(2, [(0, 1)]);
        assert_eq!(
            VectorRepresentation::build(&g, 1.5).unwrap_err(),
            VectorError::InvalidC(1.5)
        );
        assert_eq!(
            VectorRepresentation::build(&g, -0.1).unwrap_err(),
            VectorError::InvalidC(-0.1)
        );
    }

    #[test]
    fn example_one_of_the_paper() {
        // Figure 1's insight: connected pairs sum to longer vectors than
        // disconnected pairs.
        let g = from_edges(4, [(0, 1), (1, 2), (2, 3)]); // path x-y-z-t
        let rep = VectorRepresentation::build(&g, 0.4).unwrap();
        let connected = rep.phi(&[NodeId(1), NodeId(2)]); // y+z
        let disconnected = rep.phi(&[NodeId(0), NodeId(3)]); // x+t
        assert!(connected > disconnected);
        assert!((disconnected - 2.0).abs() < TOL, "orthogonal sum");
    }
}
