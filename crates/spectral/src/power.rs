//! Power iteration for extreme adjacency eigenvalues.
//!
//! The paper (Section II) computes the most negative adjacency eigenvalue
//! `λ_min` "using the well-known power method". A plain power iteration on
//! `A` fails on bipartite-like spectra where `|λ_min| = λ_max`, so both
//! extremes are computed via strictly dominant *shifted* iterations:
//!
//! * `λ_max`: iterate `A + I` (spectrum shifted positive, dominant is
//!   `λ_max + 1`);
//! * `λ_min`: iterate `σ·I − A` with `σ = (λ_max + 1)/2`, whose dominant
//!   eigenvalue is `σ − λ_min`.
//!
//! The choice of `σ` matters for wall-clock: any `σ > (λ_max + λ_min)/2`
//! makes `σ − λ_min` dominant, and the convergence ratio
//! `(σ − λ₂)/(σ − λ_min)` improves as `σ` shrinks toward that bound. The
//! midpoint `σ = (λ_max + 1)/2` is always valid (every graph with an edge
//! has `λ_min ≤ −1`, so the bound holds even if the `λ_max` estimate is
//! off by up to 2) and roughly doubles the per-iteration error decay over
//! the naive `σ = λ_max + 1`. The `λ_max` run inside [`lambda_min`] only
//! fixes `σ`, so it uses a coarse tolerance — its error budget is the
//! slack in the bound above, not the final answer's precision.

use crate::matvec::{dot, normalize, reflected_matvec, shifted_matvec};
use oca_graph::CsrGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Convergence configuration for power iterations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerConfig {
    /// Maximum number of iterations before giving up with the best estimate.
    pub max_iterations: usize,
    /// Relative tolerance on successive eigenvalue estimates.
    pub tolerance: f64,
    /// Seed for the random starting vector (deterministic runs).
    pub seed: u64,
}

impl Default for PowerConfig {
    fn default() -> Self {
        PowerConfig {
            // 300 × 1e-7 instead of the old 1000 × 1e-9: on clustered
            // spectra (LFR and friends cluster eigenvalues near λ_min) the
            // old tolerance was unreachable and every run burned the full
            // budget; `c = −1/λ_min` is insensitive at the 1e-7 level.
            max_iterations: 300,
            tolerance: 1e-7,
            seed: 0x0CA_5EED,
        }
    }
}

/// Result of a power iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerResult {
    /// The eigenvalue estimate.
    pub eigenvalue: f64,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Whether the tolerance was met within the iteration budget.
    pub converged: bool,
}

fn random_unit_vector(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x: Vec<f64> = (0..n).map(|_| rng.random::<f64>() - 0.5).collect();
    if normalize(&mut x) == 0.0 {
        // Astronomically unlikely; fall back to a coordinate vector.
        if let Some(first) = x.first_mut() {
            *first = 1.0;
        }
    }
    x
}

/// Generic shifted power iteration; `matvec` must apply a PSD-shifted
/// operator whose dominant eigenvalue maps monotonically to the target.
fn power_iterate<F>(n: usize, config: &PowerConfig, mut matvec: F) -> PowerResult
where
    F: FnMut(&[f64], &mut [f64]),
{
    let mut x = random_unit_vector(n, config.seed);
    let mut y = vec![0.0; n];
    let mut prev = f64::INFINITY;
    for it in 1..=config.max_iterations {
        matvec(&x, &mut y);
        // Rayleigh quotient of the shifted operator (x is unit).
        let lambda = dot(&x, &y);
        std::mem::swap(&mut x, &mut y);
        if normalize(&mut x) == 0.0 {
            // Operator annihilated the vector: eigenvalue 0 in this operator.
            return PowerResult {
                eigenvalue: 0.0,
                iterations: it,
                converged: true,
            };
        }
        if (lambda - prev).abs() <= config.tolerance * lambda.abs().max(1.0) {
            return PowerResult {
                eigenvalue: lambda,
                iterations: it,
                converged: true,
            };
        }
        prev = lambda;
    }
    PowerResult {
        eigenvalue: prev,
        iterations: config.max_iterations,
        converged: false,
    }
}

/// Estimates the largest adjacency eigenvalue `λ_max`.
///
/// Returns 0 for graphs with no nodes or no edges.
pub fn lambda_max(graph: &CsrGraph, config: &PowerConfig) -> PowerResult {
    let n = graph.node_count();
    if n == 0 || graph.edge_count() == 0 {
        return PowerResult {
            eigenvalue: 0.0,
            iterations: 0,
            converged: true,
        };
    }
    // Iterate A + I: eigenvalues λ_i + 1; dominant is λ_max + 1 ≥ 1 > |λ_i + 1|
    // for all others, since λ_i ≥ -λ_max ⇒ λ_i + 1 > -(λ_max + 1).
    let mut r = power_iterate(n, config, |x, y| shifted_matvec(graph, 1.0, x, y));
    r.eigenvalue -= 1.0;
    r
}

/// Estimates the most negative adjacency eigenvalue `λ_min`.
///
/// Internally first estimates `λ_max`, then runs a reflected iteration.
/// Returns 0 for graphs with no nodes or no edges.
pub fn lambda_min(graph: &CsrGraph, config: &PowerConfig) -> PowerResult {
    let n = graph.node_count();
    if n == 0 || graph.edge_count() == 0 {
        return PowerResult {
            eigenvalue: 0.0,
            iterations: 0,
            converged: true,
        };
    }
    // Phase 1 only fixes the reflection shift, so a coarse estimate
    // suffices (see the module docs for the error budget).
    let coarse = PowerConfig {
        max_iterations: config.max_iterations.min(100),
        tolerance: config.tolerance.max(1e-4),
        seed: config.seed,
    };
    let top = lambda_max(graph, &coarse);
    // Iterate shift·I − A: eigenvalues shift − λ_i, dominant is shift − λ_min.
    let shift = (top.eigenvalue + 1.0) / 2.0;
    let r = power_iterate(n, config, |x, y| reflected_matvec(graph, shift, x, y));
    let mut result = PowerResult {
        eigenvalue: shift - r.eigenvalue,
        iterations: top.iterations + r.iterations,
        converged: top.converged && r.converged,
    };
    // Sanity net for the coarse phase 1: every graph with an edge contains
    // a K₂, so interlacing gives λ_min ≤ −1. A result above that means the
    // λ_max estimate stalled so short that the midpoint shift fell below
    // (λ_max + λ_min)/2 and the iteration locked onto the *top* of the
    // spectrum instead. Rerun with σ = max degree — a certified upper
    // bound on λ_max, so `σ − λ_min` is dominant unconditionally.
    if result.eigenvalue > -0.99 {
        let safe = graph.max_degree() as f64;
        let r = power_iterate(n, config, |x, y| reflected_matvec(graph, safe, x, y));
        result = PowerResult {
            eigenvalue: safe - r.eigenvalue,
            iterations: result.iterations + r.iterations,
            // The certified shift does not depend on the phase-1 estimate,
            // so only the rerun's own convergence matters here.
            converged: r.converged,
        };
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use oca_graph::from_edges;

    const TOL: f64 = 1e-6;

    fn cfg() -> PowerConfig {
        PowerConfig::default()
    }

    #[test]
    fn k2_extremes_are_plus_minus_one() {
        let g = from_edges(2, [(0, 1)]);
        let hi = lambda_max(&g, &cfg());
        let lo = lambda_min(&g, &cfg());
        assert!(hi.converged && lo.converged);
        assert!((hi.eigenvalue - 1.0).abs() < TOL, "{}", hi.eigenvalue);
        assert!((lo.eigenvalue + 1.0).abs() < TOL, "{}", lo.eigenvalue);
    }

    #[test]
    fn complete_graph_spectrum() {
        // K5: λ_max = 4, λ_min = −1.
        let mut edges = Vec::new();
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                edges.push((i, j));
            }
        }
        let g = from_edges(5, edges);
        assert!((lambda_max(&g, &cfg()).eigenvalue - 4.0).abs() < TOL);
        assert!((lambda_min(&g, &cfg()).eigenvalue + 1.0).abs() < TOL);
    }

    #[test]
    fn star_graph_spectrum() {
        // K_{1,4}: λ_max = 2, λ_min = −2 (bipartite; breaks naive power method).
        let g = from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert!((lambda_max(&g, &cfg()).eigenvalue - 2.0).abs() < TOL);
        assert!((lambda_min(&g, &cfg()).eigenvalue + 2.0).abs() < TOL);
    }

    #[test]
    fn path_p3_spectrum() {
        // P3: eigenvalues ±√2, 0.
        let g = from_edges(3, [(0, 1), (1, 2)]);
        let s = 2.0f64.sqrt();
        assert!((lambda_max(&g, &cfg()).eigenvalue - s).abs() < TOL);
        assert!((lambda_min(&g, &cfg()).eigenvalue + s).abs() < TOL);
    }

    #[test]
    fn cycle_c4_bipartite() {
        // C4: eigenvalues 2, 0, 0, −2.
        let g = from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!((lambda_max(&g, &cfg()).eigenvalue - 2.0).abs() < TOL);
        assert!((lambda_min(&g, &cfg()).eigenvalue + 2.0).abs() < TOL);
    }

    #[test]
    fn edgeless_graph_returns_zero() {
        let g = oca_graph::CsrGraph::empty(5);
        assert_eq!(lambda_max(&g, &cfg()).eigenvalue, 0.0);
        assert_eq!(lambda_min(&g, &cfg()).eigenvalue, 0.0);
    }

    #[test]
    fn disconnected_components_take_extreme_over_all() {
        // Triangle (λ ∈ {2, −1, −1}) plus K2 (λ ∈ {1, −1}).
        let g = from_edges(5, [(0, 1), (1, 2), (0, 2), (3, 4)]);
        assert!((lambda_max(&g, &cfg()).eigenvalue - 2.0).abs() < TOL);
        assert!((lambda_min(&g, &cfg()).eigenvalue + 1.0).abs() < TOL);
    }

    #[test]
    fn deterministic_across_runs() {
        let g = from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)]);
        let a = lambda_min(&g, &cfg());
        let b = lambda_min(&g, &cfg());
        assert_eq!(a, b);
    }

    /// Even when the iteration budget is too small for the coarse λ_max
    /// phase to place the midpoint shift safely, the sanity net (rerun
    /// with σ = max degree, a certified upper bound) keeps `lambda_min`
    /// from locking onto the top of the spectrum and reporting a
    /// positive "minimum".
    #[test]
    fn starved_budget_never_returns_the_wrong_spectrum_end() {
        for seed in [1u64, 2, 3] {
            let g = from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]);
            let starved = PowerConfig {
                max_iterations: 4,
                tolerance: 1e-12,
                seed,
            };
            let r = lambda_min(&g, &starved);
            assert!(
                r.eigenvalue < 0.0,
                "seed {seed}: λ_min estimate {} is on the wrong end",
                r.eigenvalue
            );
        }
    }

    #[test]
    fn iteration_budget_is_respected() {
        let g = from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let tight = PowerConfig {
            max_iterations: 1,
            ..cfg()
        };
        let r = lambda_max(&g, &tight);
        assert!(r.iterations <= 1);
    }
}
