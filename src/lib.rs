//! # oca-repro — workspace facade for the OCA (ICDE 2010) reproduction
//!
//! Re-exports every crate of the reproduction under one roof so examples
//! and integration tests can use a single dependency. See the README for
//! the architecture overview and DESIGN.md for the paper-to-code map.

pub use oca as core_alg;
pub use oca_baselines as baselines;
pub use oca_bench as bench;
pub use oca_gen as gen;
pub use oca_graph as graph;
pub use oca_hierarchy as hierarchy;
pub use oca_metrics as metrics;
pub use oca_spectral as spectral;

/// Convenience prelude: the types most programs need.
pub mod prelude {
    pub use oca::{Oca, OcaConfig, OcaResult, SeedStrategy};
    pub use oca_graph::{Community, Cover, CsrGraph, GraphBuilder, NodeId};
    pub use oca_metrics::{rho, theta};
}
