//! # oca-repro — workspace facade for the OCA (ICDE 2010) reproduction
//!
//! Re-exports every crate of the reproduction under one roof so examples
//! and integration tests can use a single dependency. See the README for
//! the architecture overview and DESIGN.md for the paper-to-code map.
//!
//! The primary entry point is the [`prelude::CommunityDetector`] trait:
//! every algorithm (OCA and the Section V baselines) sits behind it, and
//! the [`prelude::registry()`] constructs any of them by name.
//!
//! ```
//! use oca_repro::prelude::*;
//!
//! // Two triangles sharing node 2 — an overlapping structure.
//! let g = oca_repro::graph::from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]);
//! let detector = registry().build("oca", &DetectorOptions::new()).unwrap();
//! let detection = detector.detect(&g, &mut DetectContext::new(42)).unwrap();
//! assert!(!detection.cover.is_empty());
//! ```

pub use oca as core_alg;
pub use oca_api as api;
pub use oca_baselines as baselines;
pub use oca_bench as bench;
pub use oca_gen as gen;
pub use oca_graph as graph;
pub use oca_hierarchy as hierarchy;
pub use oca_metrics as metrics;
pub use oca_serve as serve;
pub use oca_spectral as spectral;

/// Convenience prelude: the types most programs need.
///
/// The detection API ([`CommunityDetector`](oca_graph::CommunityDetector),
/// [`DetectContext`](oca_graph::DetectContext), [`registry()`](fn@oca_api::registry))
/// is the primary entry point; the concrete `Oca` runner remains available
/// for code that wants OCA-specific telemetry.
pub mod prelude {
    pub use oca::{
        LocalConfig, LocalDetection, LocalDetector, Oca, OcaConfig, OcaDetector, OcaResult,
        SeedStrategy,
    };
    pub use oca_api::{registry, DetectorOptions, DetectorRegistry, DetectorSpec};
    pub use oca_graph::{
        CancelToken, CommunityDetector, DetectContext, DetectError, Detection, Progress,
    };
    pub use oca_graph::{Community, Cover, CsrGraph, GraphBuilder, GraphError, NodeId};
    pub use oca_metrics::{rho, theta};
    pub use oca_serve::{Client, CoverSnapshot, ServeConfig, Server, SnapshotStore};
}
